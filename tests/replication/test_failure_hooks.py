"""FailureDetector transition hooks: reentrancy and delivery order.

Hooks fire outside the detector's lock, serialized, in flip order — so a
hook that re-queries liveness (the placement-cache rebuild does exactly
that mid-routing) or even mutates the detector cannot deadlock, and two
racing flips can never deliver their notifications inverted.
"""

import threading

from repro.replication.failure import FailureDetector


class TestHookReentrancy:
    def test_hook_may_query_liveness(self):
        seen = []
        detector = FailureDetector(
            threshold=1,
            on_transition=lambda host, alive: seen.append(
                (host, alive, detector.is_alive(host))
            ),
        )
        detector.mark_dead("h1")
        detector.mark_alive("h1")
        # No deadlock, and the hook observed the post-flip state.
        assert seen == [("h1", False, False), ("h1", True, True)]

    def test_hook_may_call_mutators_without_deadlock_or_recursion(self):
        """A hook-caused flip is delivered after the current one, not inside."""
        events = []
        depth = {"now": 0, "max": 0}

        def hook(host, alive):
            depth["now"] += 1
            depth["max"] = max(depth["max"], depth["now"])
            events.append((host, alive))
            if host == "h1" and not alive:
                detector.mark_dead("h2")  # reentrant mutation
            depth["now"] -= 1

        detector = FailureDetector(threshold=1, on_transition=hook)
        detector.mark_dead("h1")
        assert events == [("h1", False), ("h2", False)]
        assert depth["max"] == 1, "hook delivery recursed into itself"
        assert not detector.is_alive("h2")

    def test_record_failure_threshold_fires_hook_once(self):
        events = []
        detector = FailureDetector(
            threshold=3, on_transition=lambda h, a: events.append((h, a))
        )
        assert not detector.record_failure("h")
        assert not detector.record_failure("h")
        assert detector.record_failure("h")
        assert not detector.record_failure("h")  # already dead: no re-fire
        assert events == [("h", False)]


class TestDeliveryOrder:
    def test_concurrent_flips_deliver_in_flip_order(self):
        """The queue preserves the order the flips were decided in.

        Without the queue, a thread could compute its transition, lose
        the CPU before notifying, and deliver *after* a later flip — the
        hook would then end on a stale notion of liveness.
        """
        events = []
        gate = threading.Event()

        def hook(host, alive):
            gate.wait(1.0)  # widen the race window inside delivery
            events.append((host, alive))

        detector = FailureDetector(threshold=1, on_transition=hook)

        def flip():
            detector.mark_dead("x")
            detector.mark_alive("x")

        threads = [threading.Thread(target=flip) for _ in range(4)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join(5.0)
        # However the four threads interleaved, delivery must alternate
        # dead/alive exactly as the flips were decided under the lock.
        assert events, "hooks never fired"
        for i, (host, alive) in enumerate(events):
            assert host == "x"
            assert alive == (i % 2 == 1), f"inverted delivery at {i}: {events}"

    def test_hooks_run_outside_the_lock(self):
        """is_alive from another thread must not block during delivery."""
        in_hook = threading.Event()
        release = threading.Event()

        def hook(host, alive):
            in_hook.set()
            release.wait(2.0)

        detector = FailureDetector(threshold=1, on_transition=hook)
        t = threading.Thread(target=detector.mark_dead, args=("h",))
        t.start()
        assert in_hook.wait(2.0)
        # Delivery is in progress; the detector itself must stay usable.
        probe_done = threading.Event()
        result = {}

        def probe():
            result["alive"] = detector.is_alive("h")
            probe_done.set()

        threading.Thread(target=probe).start()
        assert probe_done.wait(1.0), "is_alive blocked while a hook ran"
        assert result["alive"] is False
        release.set()
        t.join(2.0)
