"""Unit tests: failure detector thresholds and heartbeat probing."""

import time

import pytest

from repro.network.connection import Address
from repro.network.transport import InMemoryTransport, NetworkFabric
from repro.replication.failure import FailureDetector, HeartbeatMonitor
from repro.servers.memo_server import MEMO_PORT, MemoServer


class TestFailureDetector:
    def test_unknown_hosts_presumed_alive(self):
        detector = FailureDetector()
        assert detector.is_alive("never-seen")

    def test_threshold_failures_turn_host_dead(self):
        detector = FailureDetector(threshold=3)
        assert not detector.record_failure("h")
        assert not detector.record_failure("h")
        assert detector.is_alive("h")
        assert detector.record_failure("h")  # newly dead
        assert not detector.is_alive("h")
        assert not detector.record_failure("h")  # already dead

    def test_mark_alive_resets_failure_count(self):
        detector = FailureDetector(threshold=2)
        detector.record_failure("h")
        detector.mark_alive("h")
        # One more failure is again below threshold.
        assert not detector.record_failure("h")
        assert detector.is_alive("h")

    def test_mark_dead_is_immediate(self):
        detector = FailureDetector(threshold=5)
        detector.mark_dead("h")
        assert not detector.is_alive("h")
        assert detector.dead_hosts() == ("h",)
        detector.mark_alive("h")
        assert detector.is_alive("h")

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            FailureDetector(threshold=0)


class TestHeartbeatMonitor:
    def _server(self, fabric, host, book):
        transport = InMemoryTransport(fabric, host)
        server = MemoServer(host, transport, address_book=book)
        server.start()
        return server, transport

    def test_probe_marks_live_peer_alive_and_dead_peer_dead(self):
        fabric = NetworkFabric()
        book: dict[str, Address] = {}
        a, transport_a = self._server(fabric, "a", book)
        b, _transport_b = self._server(fabric, "b", book)
        try:
            detector = FailureDetector(threshold=2)
            detector.mark_dead("b")
            monitor = HeartbeatMonitor("a", transport_a, book, detector)
            monitor.probe_once()
            assert detector.is_alive("b")

            b.stop()
            monitor.probe_once()
            monitor.probe_once()
            assert not detector.is_alive("b")
        finally:
            a.stop()
            b.stop()

    def test_receiving_a_heartbeat_marks_sender_alive(self):
        fabric = NetworkFabric()
        book: dict[str, Address] = {}
        a, transport_a = self._server(fabric, "a", book)
        b, _ = self._server(fabric, "b", book)
        try:
            b.failure.mark_dead("a")
            monitor = HeartbeatMonitor("a", transport_a, book, a.failure)
            monitor.probe_once()
            # b heard from a, so b's detector cleared the suspicion.
            assert b.failure.is_alive("a")
        finally:
            a.stop()
            b.stop()

    def test_monitor_thread_start_stop(self):
        fabric = NetworkFabric()
        book: dict[str, Address] = {}
        a, transport_a = self._server(fabric, "a", book)
        b, _ = self._server(fabric, "b", book)
        try:
            detector = FailureDetector(threshold=2)
            monitor = HeartbeatMonitor(
                "a", transport_a, book, detector, interval=0.02
            )
            monitor.start()
            assert monitor.running
            b.stop()
            deadline = time.monotonic() + 5.0
            while detector.is_alive("b") and time.monotonic() < deadline:
                time.sleep(0.02)
            assert not detector.is_alive("b")
            monitor.stop()
            assert not monitor.running
        finally:
            a.stop()
            b.stop()
