"""Unit tests for the ADF text format, including the paper's own example."""

import pytest

from repro.adf.parser import evaluate_cost_expression, parse_adf
from repro.errors import ADFSyntaxError

#: The full example from section 4.3 of the paper, verbatim in structure.
PAPER_ADF = """
# Application Name
APP invert

HOSTS
# Hosts              #Procs Arch  Cost
glen-ellyn.iit.edu   1      sun4  1
aurora.iit.edu       1      sun4  1
joliet.iit.edu       1      sun4  1
bonnie.mcs.anl.gov   128    sp1   sun4*0.5

FOLDERS
# Folder Location at
0   glen-ellyn.iit.edu
1   aurora.iit.edu
2   joliet.iit.edu
3-8 bonnie.mcs.anl.gov

PROCESSES
#Proc Directory Located at
0    boss    glen-ellyn.iit.edu
1    worker1 aurora.iit.edu
2    worker1 joliet.iit.edu
3-22 worker2 bonnie.mcs.anl.gov

PPC
# Point-to-Point Connection with cost
glen-ellyn.iit.edu <-> aurora.iit.edu 1
glen-ellyn.iit.edu <-> joliet.iit.edu 1
glen-ellyn.iit.edu <-> bonnie.mcs.anl.gov 2
"""


class TestPaperExample:
    def test_parses_and_validates(self):
        adf = parse_adf(PAPER_ADF)
        adf.validate()

    def test_app_name(self):
        assert parse_adf(PAPER_ADF).app == "invert"

    def test_hosts(self):
        adf = parse_adf(PAPER_ADF)
        assert len(adf.hosts) == 4
        bonnie = adf.hosts[3]
        assert bonnie.name == "bonnie.mcs.anl.gov"
        assert bonnie.num_procs == 128
        assert bonnie.arch == "sp1"
        assert bonnie.cost == pytest.approx(0.5)  # sun4*0.5

    def test_sp1_power_dominates(self):
        """128 procs at half cost → 256× a single Sparc's power."""
        power = parse_adf(PAPER_ADF).host_power()
        assert power["bonnie.mcs.anl.gov"] == pytest.approx(256.0)
        assert power["glen-ellyn.iit.edu"] == pytest.approx(1.0)

    def test_folder_range_expansion(self):
        adf = parse_adf(PAPER_ADF)
        assert len(adf.folders) == 9  # 0,1,2 + 3..8
        assert [f.server_id for f in adf.folders[3:]] == ["3", "4", "5", "6", "7", "8"]
        assert all(f.host == "bonnie.mcs.anl.gov" for f in adf.folders[3:])

    def test_process_range_expansion(self):
        adf = parse_adf(PAPER_ADF)
        assert len(adf.processes) == 23  # 0,1,2 + 3..22
        assert adf.processes[0].directory == "boss"
        assert adf.processes[5].directory == "worker2"

    def test_links(self):
        adf = parse_adf(PAPER_ADF)
        assert len(adf.links) == 3
        sp1_link = adf.links[2]
        assert sp1_link.cost == 2.0
        assert sp1_link.duplex


class TestCostExpressions:
    def test_plain_number(self):
        assert evaluate_cost_expression("2.5", {}) == 2.5

    def test_arch_variable(self):
        assert evaluate_cost_expression("sun4*0.5", {"sun4": 2.0}) == 1.0

    def test_division_and_parens(self):
        assert evaluate_cost_expression("(sun4+1)/2", {"sun4": 3.0}) == 2.0

    def test_unary_minus(self):
        assert evaluate_cost_expression("-2+3", {}) == 1.0

    def test_precedence(self):
        assert evaluate_cost_expression("1+2*3", {}) == 7.0

    def test_unknown_variable(self):
        with pytest.raises(ADFSyntaxError, match="architecture variable"):
            evaluate_cost_expression("vax*2", {})

    def test_division_by_zero(self):
        with pytest.raises(ADFSyntaxError):
            evaluate_cost_expression("1/0", {})

    def test_garbage(self):
        with pytest.raises(ADFSyntaxError):
            evaluate_cost_expression("1 +* 2", {})

    def test_arch_env_uses_first_host(self):
        adf = parse_adf(
            "APP a\nHOSTS\nh1 1 sun4 2\nh2 1 sun4 4\nh3 1 sp1 sun4*3\n"
        )
        assert adf.hosts[2].cost == 6.0  # first sun4 cost (2) × 3


class TestSyntaxErrors:
    def test_data_outside_section(self):
        with pytest.raises(ADFSyntaxError, match="outside any section"):
            parse_adf("host1 1 sun4 1\n")

    def test_app_needs_one_name(self):
        with pytest.raises(ADFSyntaxError):
            parse_adf("APP one two\n")

    def test_bad_host_line(self):
        with pytest.raises(ADFSyntaxError, match="HOSTS line"):
            parse_adf("APP a\nHOSTS\nonly-name\n")

    def test_bad_proc_count(self):
        with pytest.raises(ADFSyntaxError, match="#procs"):
            parse_adf("APP a\nHOSTS\nh many sun4 1\n")

    def test_bad_connector(self):
        with pytest.raises(ADFSyntaxError, match="connector"):
            parse_adf("APP a\nPPC\nh1 -- h2 1\n")

    def test_descending_range(self):
        with pytest.raises(ADFSyntaxError, match="descending"):
            parse_adf("APP a\nFOLDERS\n8-3 h1\n")

    def test_bad_link_cost(self):
        with pytest.raises(ADFSyntaxError, match="cost"):
            parse_adf("APP a\nPPC\nh1 <-> h2 fast\n")

    def test_error_carries_line_number(self):
        with pytest.raises(ADFSyntaxError, match="line 3"):
            parse_adf("APP a\nHOSTS\nbad line here also extra\n")


class TestLexicalDetails:
    def test_comments_anywhere(self):
        adf = parse_adf("APP a # trailing comment\nHOSTS\nh 1 x 1 # note\n")
        assert adf.app == "a"
        assert adf.hosts[0].name == "h"

    def test_lowercase_keyword_names_are_plain_data(self):
        """A host literally named "app"/"hosts" is data, not a header."""
        adf = parse_adf("APP a\nHOSTS\napp 1 x 1\nhosts 1 x 1\n")
        assert [h.name for h in adf.hosts] == ["app", "hosts"]

    def test_blank_lines_ignored(self):
        adf = parse_adf("\n\nAPP a\n\n\nHOSTS\nh 1 x 1\n\n")
        assert len(adf.hosts) == 1

    def test_simplex_link(self):
        adf = parse_adf("APP a\nPPC\nh1 -> h2 3\n")
        assert not adf.links[0].duplex

    def test_default_link_cost(self):
        adf = parse_adf("APP a\nPPC\nh1 <-> h2\n")
        assert adf.links[0].cost == 1.0
