"""Unit tests for ADF model validation, topology generators, and defaults."""

import pytest

from repro.adf.defaults import merge_with_default, system_default_adf
from repro.adf.model import ADF, FolderDecl, HostDecl, LinkDecl, ProcessDecl
from repro.adf.topology import (
    cube_links,
    fully_connected_links,
    mesh_links,
    ring_links,
    star_links,
    systolic_links,
    tree_links,
)
from repro.errors import ADFError, TopologyError
from repro.network.routing import RoutingTable


def valid_adf():
    adf = ADF(app="a")
    adf.hosts = [HostDecl("h1"), HostDecl("h2")]
    adf.folders = [FolderDecl("0", "h1")]
    adf.processes = [ProcessDecl("0", "boss", "h1")]
    adf.links = [LinkDecl("h1", "h2")]
    return adf


class TestValidation:
    def test_valid_passes(self):
        valid_adf().validate()

    def test_missing_app(self):
        adf = valid_adf()
        adf.app = ""
        with pytest.raises(ADFError, match="APP"):
            adf.validate()

    def test_no_hosts(self):
        adf = valid_adf()
        adf.hosts = []
        with pytest.raises(ADFError, match="no hosts"):
            adf.validate()

    def test_duplicate_hosts(self):
        adf = valid_adf()
        adf.hosts.append(HostDecl("h1"))
        with pytest.raises(ADFError, match="duplicate host"):
            adf.validate()

    def test_no_folder_servers(self):
        adf = valid_adf()
        adf.folders = []
        with pytest.raises(ADFError, match="folder server"):
            adf.validate()

    def test_folder_on_unknown_host(self):
        adf = valid_adf()
        adf.folders.append(FolderDecl("1", "ghost"))
        with pytest.raises(ADFError, match="unknown host"):
            adf.validate()

    def test_duplicate_folder_id(self):
        adf = valid_adf()
        adf.folders.append(FolderDecl("0", "h2"))
        with pytest.raises(ADFError, match="duplicate folder"):
            adf.validate()

    def test_process_on_unknown_host(self):
        adf = valid_adf()
        adf.processes.append(ProcessDecl("1", "worker", "ghost"))
        with pytest.raises(ADFError, match="unknown host"):
            adf.validate()

    def test_link_to_unknown_host(self):
        adf = valid_adf()
        adf.links.append(LinkDecl("h1", "ghost"))
        with pytest.raises(TopologyError):
            adf.validate()

    def test_self_link(self):
        adf = valid_adf()
        adf.links.append(LinkDecl("h1", "h1"))
        with pytest.raises(TopologyError, match="self-link"):
            adf.validate()

    def test_disconnected_topology(self):
        adf = valid_adf()
        adf.hosts.append(HostDecl("h3"))
        with pytest.raises(TopologyError, match="connect"):
            adf.validate()

    def test_host_decl_invariants(self):
        with pytest.raises(ADFError):
            HostDecl("h", num_procs=0)
        with pytest.raises(ADFError):
            HostDecl("h", cost=0)
        with pytest.raises(ADFError):
            HostDecl("")


class TestDerivedViews:
    def test_host_power(self):
        adf = valid_adf()
        adf.hosts = [HostDecl("h1", 4, "x", 2.0), HostDecl("h2", 1, "x", 0.5)]
        assert adf.host_power() == {"h1": 2.0, "h2": 2.0}

    def test_links_dict_duplex(self):
        adf = valid_adf()
        d = adf.links_dict()
        assert d["h1"]["h2"] == 1.0 and d["h2"]["h1"] == 1.0

    def test_links_dict_simplex(self):
        adf = valid_adf()
        adf.links = [LinkDecl("h1", "h2", duplex=False)]
        d = adf.links_dict()
        assert "h2" in d["h1"] and "h1" not in d["h2"]

    def test_processes_on(self):
        adf = valid_adf()
        assert [p.proc_id for p in adf.processes_on("h1")] == ["0"]
        assert adf.processes_on("h2") == []


def hosts(n):
    return [f"h{i}" for i in range(n)]


class TestTopologyGenerators:
    def check_connected(self, names, links):
        adj = {h: {} for h in names}
        for link in links:
            adj[link.host_a][link.host_b] = link.cost
            if link.duplex:
                adj[link.host_b][link.host_a] = link.cost
        assert RoutingTable(adj).is_connected()

    def test_star(self):
        links = star_links(hosts(5))
        assert len(links) == 4
        assert all(link.host_a == "h0" for link in links)
        self.check_connected(hosts(5), links)

    def test_ring(self):
        links = ring_links(hosts(5))
        assert len(links) == 5
        self.check_connected(hosts(5), links)

    def test_systolic_line(self):
        links = systolic_links(hosts(4))
        assert len(links) == 3
        self.check_connected(hosts(4), links)

    def test_mesh(self):
        links = mesh_links(hosts(6), columns=3)
        # 2x3 grid: 4 horizontal + 3 vertical
        assert len(links) == 7
        self.check_connected(hosts(6), links)

    def test_ragged_mesh(self):
        links = mesh_links(hosts(5), columns=2)
        self.check_connected(hosts(5), links)

    def test_cube(self):
        links = cube_links(hosts(8))
        assert len(links) == 12  # 3-cube
        self.check_connected(hosts(8), links)

    def test_cube_requires_power_of_two(self):
        with pytest.raises(TopologyError):
            cube_links(hosts(6))

    def test_tree(self):
        links = tree_links(hosts(7), fanout=2)
        assert len(links) == 6
        self.check_connected(hosts(7), links)

    def test_fully_connected(self):
        links = fully_connected_links(hosts(5))
        assert len(links) == 10
        self.check_connected(hosts(5), links)

    def test_too_few_hosts(self):
        with pytest.raises(TopologyError):
            star_links(["only"])
        with pytest.raises(TopologyError):
            ring_links(hosts(2))

    def test_duplicate_hosts_rejected(self):
        with pytest.raises(TopologyError):
            star_links(["a", "a", "b"])

    def test_custom_cost(self):
        links = star_links(hosts(3), cost=4.0)
        assert all(link.cost == 4.0 for link in links)


class TestDefaults:
    def test_system_default_is_valid(self):
        system_default_adf(["a", "b", "c"]).validate()

    def test_single_host_default(self):
        adf = system_default_adf()
        adf.validate()
        assert adf.hosts[0].name == "localhost"
        assert adf.links == []

    def test_merge_fills_missing_sections(self):
        partial = ADF(app="mine")
        default = system_default_adf(["x", "y"])
        merged = merge_with_default(partial, default)
        assert merged.app == "mine"
        assert merged.hosts == default.hosts
        merged.validate()

    def test_merge_keeps_declared_sections(self):
        partial = ADF(app="mine", hosts=[HostDecl("special")])
        merged = merge_with_default(partial, system_default_adf(["x"]))
        assert merged.hosts[0].name == "special"

    def test_merge_requires_some_app(self):
        with pytest.raises(ADFError):
            merge_with_default(ADF(app=""), ADF(app=""))
