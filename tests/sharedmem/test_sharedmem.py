"""Unit tests for the shared-memory derivations against the common contract."""

import pytest

from repro.errors import (
    OutOfSharedMemoryError,
    SegmentNotFoundError,
    SharedMemoryError,
)
from repro.sharedmem import (
    LocalSharedMemory,
    PooledSharedMemory,
    PosixSharedMemory,
    available_sharedmem_kinds,
    sharedmem_factory,
)

ALL_BACKENDS = [
    lambda: LocalSharedMemory(),
    lambda: PooledSharedMemory(pool_size=1 << 16),
    lambda: PosixSharedMemory(prefix=f"dmemotest"),
]


@pytest.fixture(params=ALL_BACKENDS, ids=["local", "pooled", "posix"])
def backend(request):
    mem = request.param()
    yield mem
    mem.release_all()


class TestContract:
    """Section 3.1.2 contract, run against every derivation."""

    def test_allocate_read_write(self, backend):
        seg = backend.allocate("a", 16)
        backend.write(seg, 0, b"hello")
        assert backend.read(seg, 0, 5) == b"hello"

    def test_zero_filled(self, backend):
        seg = backend.allocate("z", 8)
        assert backend.read(seg, 0, 8) == b"\x00" * 8

    def test_offset_write(self, backend):
        seg = backend.allocate("o", 10)
        backend.write(seg, 4, b"xy")
        assert backend.read(seg, 3, 4) == b"\x00xy\x00"

    def test_attach_sees_writes(self, backend):
        seg = backend.allocate("s", 8)
        backend.write(seg, 0, b"shared!!")
        other = backend.attach("s")
        assert other.size == 8
        assert backend.read(other, 0, 8) == b"shared!!"

    def test_duplicate_name_rejected(self, backend):
        backend.allocate("dup", 4)
        with pytest.raises(SharedMemoryError):
            backend.allocate("dup", 4)

    def test_attach_missing_rejected(self, backend):
        with pytest.raises(SegmentNotFoundError):
            backend.attach("ghost")

    def test_out_of_bounds_rejected(self, backend):
        seg = backend.allocate("b", 8)
        with pytest.raises(SharedMemoryError):
            backend.write(seg, 6, b"xyz")
        with pytest.raises(SharedMemoryError):
            backend.read(seg, -1, 2)
        with pytest.raises(SharedMemoryError):
            backend.read(seg, 0, 9)

    def test_free_then_attach_fails(self, backend):
        seg = backend.allocate("f", 4)
        backend.free(seg)
        with pytest.raises(SegmentNotFoundError):
            backend.attach("f")

    def test_double_free_rejected(self, backend):
        seg = backend.allocate("g", 4)
        backend.free(seg)
        with pytest.raises(SegmentNotFoundError):
            backend.free(seg)

    def test_release_all_clears(self, backend):
        backend.allocate("r1", 4)
        backend.allocate("r2", 4)
        backend.release_all()
        with pytest.raises(SegmentNotFoundError):
            backend.attach("r1")

    def test_zero_size_rejected(self, backend):
        with pytest.raises(SharedMemoryError):
            backend.allocate("empty", 0)

    def test_context_manager_releases(self, backend):
        with backend:
            backend.allocate("cm", 4)
        with pytest.raises(SegmentNotFoundError):
            backend.attach("cm")


class TestPooledSpecifics:
    """The Encore-style pre-declared pool protocol."""

    def test_pool_accounting(self):
        mem = PooledSharedMemory(pool_size=100)
        assert mem.free_bytes == 100
        seg = mem.allocate("a", 60)
        assert mem.free_bytes == 40
        mem.free(seg)
        assert mem.free_bytes == 100

    def test_exhaustion_raises(self):
        mem = PooledSharedMemory(pool_size=100)
        mem.allocate("a", 80)
        with pytest.raises(OutOfSharedMemoryError):
            mem.allocate("b", 30)

    def test_free_replenishes(self):
        mem = PooledSharedMemory(pool_size=100)
        seg = mem.allocate("a", 80)
        mem.free(seg)
        mem.allocate("b", 90)  # now fits

    def test_failed_duplicate_does_not_leak_pool(self):
        mem = PooledSharedMemory(pool_size=100)
        mem.allocate("a", 40)
        with pytest.raises(SharedMemoryError):
            mem.allocate("a", 40)
        assert mem.free_bytes == 60

    def test_release_all_restores_pool(self):
        mem = PooledSharedMemory(pool_size=100)
        mem.allocate("a", 30)
        mem.allocate("b", 30)
        mem.release_all()
        assert mem.free_bytes == 100

    def test_invalid_pool_size(self):
        with pytest.raises(SharedMemoryError):
            PooledSharedMemory(pool_size=0)


class TestFactory:
    def test_kinds_registered(self):
        kinds = available_sharedmem_kinds()
        for kind in ("local", "pooled", "posix"):
            assert kind in kinds

    def test_factory_with_kwargs(self):
        mem = sharedmem_factory("pooled", pool_size=64)
        assert isinstance(mem, PooledSharedMemory)
        assert mem.free_bytes == 64

    def test_unknown_backend(self):
        with pytest.raises(SharedMemoryError):
            sharedmem_factory("holographic")


class TestLocalSpecifics:
    def test_segment_names(self):
        mem = LocalSharedMemory()
        mem.allocate("x", 4)
        mem.allocate("y", 4)
        assert set(mem.segment_names()) == {"x", "y"}
