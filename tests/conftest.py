"""Shared fixtures: small clusters over the in-memory fabric."""

from __future__ import annotations

import pytest

from repro import Cluster, system_default_adf
from repro.adf.model import ADF, FolderDecl, HostDecl, LinkDecl, ProcessDecl


@pytest.fixture
def one_host_cluster():
    """A single-host cluster with the app 'test' registered."""
    adf = system_default_adf(["solo"], app="test")
    with Cluster(adf, idle_timeout=0.5) as cluster:
        cluster.register()
        yield cluster


@pytest.fixture
def two_host_cluster():
    """Two hosts, one folder server each, app 'test' registered."""
    adf = system_default_adf(["alpha", "beta"], app="test")
    with Cluster(adf, idle_timeout=0.5) as cluster:
        cluster.register()
        yield cluster


@pytest.fixture
def star_cluster():
    """Four hosts in a star (hub 'hub'), heterogeneous powers."""
    adf = ADF(app="test")
    adf.hosts = [
        HostDecl("hub", 1, "sun4", 1.0),
        HostDecl("s1", 1, "sun4", 1.0),
        HostDecl("s2", 2, "sun4", 1.0),
        HostDecl("big", 8, "sp1", 0.5),
    ]
    adf.folders = [
        FolderDecl("0", "hub"),
        FolderDecl("1", "s1"),
        FolderDecl("2", "s2"),
        FolderDecl("3", "big"),
    ]
    adf.processes = [ProcessDecl("0", "boss", "hub")]
    adf.links = [
        LinkDecl("hub", "s1", 1.0),
        LinkDecl("hub", "s2", 1.0),
        LinkDecl("hub", "big", 2.0),
    ]
    with Cluster(adf, idle_timeout=0.5) as cluster:
        cluster.register()
        yield cluster


@pytest.fixture
def memo(one_host_cluster):
    """A Memo API on the single-host cluster.

    The owning cluster is attached as ``memo.cluster`` so tests can mint
    sibling APIs (fresh connections) when a thread will block.
    """
    api = one_host_cluster.memo_api("solo", "test")
    api.cluster = one_host_cluster
    return api
