"""Unit tests for the simulation substrate: hosts, latency, metrics."""

import pytest

from repro.adf.parser import parse_adf
from repro.errors import MemoError
from repro.network.transport import NetworkFabric
from repro.sim.host import SimHost, hosts_from_adf
from repro.sim.metrics import ClusterMetrics, chi_square_uniform, distribution_error
from repro.sim.netsim import LatencyModel, apply_latency


class TestSimHost:
    def test_power(self):
        assert SimHost("h", num_procs=128, proc_cost=0.5).power == 256.0

    def test_service_time_scales_with_power(self):
        slow = SimHost("s", num_procs=1, proc_cost=1.0)
        fast = SimHost("f", num_procs=4, proc_cost=1.0)
        assert fast.service_time(1.0) == slow.service_time(1.0) / 4

    def test_invariants(self):
        with pytest.raises(MemoError):
            SimHost("h", num_procs=0)
        with pytest.raises(MemoError):
            SimHost("h", proc_cost=0)
        with pytest.raises(MemoError):
            SimHost("h", word_bits=48)

    def test_hosts_from_adf_word_sizes(self):
        adf = parse_adf(
            "APP a\nHOSTS\nsparc 1 sun4 1\nmpp 128 sp1 0.5\npc 1 i486 1\n"
        )
        hosts = hosts_from_adf(adf)
        assert hosts["sparc"].word_bits == 32
        assert hosts["mpp"].word_bits == 64
        assert hosts["pc"].word_bits == 16


class TestLatencyModel:
    def test_affine(self):
        model = LatencyModel(base_seconds=0.001, seconds_per_cost=0.002)
        assert model.latency_for_cost(2.0) == pytest.approx(0.005)

    def test_zero(self):
        assert LatencyModel().is_zero
        assert not LatencyModel(0.001, 0).is_zero

    def test_negative_rejected(self):
        with pytest.raises(MemoError):
            LatencyModel(-1, 0)

    def test_apply_to_fabric(self):
        adf = parse_adf("APP a\nHOSTS\nh1 1 x 1\nh2 1 x 1\nPPC\nh1 <-> h2 3\n")
        fabric = NetworkFabric()
        apply_latency(fabric, adf, LatencyModel(0.001, 0.002))
        assert fabric.latency("h1", "h2") == pytest.approx(0.007)
        assert fabric.latency("h2", "h1") == pytest.approx(0.007)

    def test_zero_model_is_noop(self):
        adf = parse_adf("APP a\nHOSTS\nh1 1 x 1\nh2 1 x 1\nPPC\nh1 <-> h2 3\n")
        fabric = NetworkFabric()
        apply_latency(fabric, adf, LatencyModel())
        assert fabric.latency("h1", "h2") == 0.0


class TestStatistics:
    def test_distribution_error_zero_for_exact(self):
        observed = {"a": 50, "b": 50}
        assert distribution_error(observed, {"a": 0.5, "b": 0.5}) == 0.0

    def test_distribution_error_max_for_disjoint(self):
        assert distribution_error({"a": 100}, {"b": 1.0}) == pytest.approx(1.0)

    def test_distribution_error_partial(self):
        observed = {"a": 75, "b": 25}
        err = distribution_error(observed, {"a": 0.5, "b": 0.5})
        assert err == pytest.approx(0.25)

    def test_empty_observed(self):
        assert distribution_error({}, {"a": 1.0}) == 0.0

    def test_chi_square_uniform_small_for_even(self):
        even = {str(i): 1000 for i in range(4)}
        assert chi_square_uniform(even) == 0.0

    def test_chi_square_large_for_skew(self):
        skewed = {"a": 4000, "b": 10, "c": 10, "d": 10}
        assert chi_square_uniform(skewed) > 100

    def test_chi_square_degenerate(self):
        assert chi_square_uniform({}) == 0.0
        assert chi_square_uniform({"only": 5}) == 0.0


class TestClusterMetrics:
    def test_from_fabric(self):
        fabric = NetworkFabric()
        fabric.record_traffic("a", "b", 100)
        fabric.record_traffic("a", "b", 50)
        fabric.record_traffic("b", "a", 10)
        metrics = ClusterMetrics.from_fabric(fabric)
        assert metrics.link_messages[("a", "b")] == 2
        assert metrics.link_bytes[("a", "b")] == 150
        assert metrics.total_messages() == 3
        assert metrics.total_bytes() == 160
        assert metrics.inter_host_messages() == 3

    def test_add_server_stats(self):
        metrics = ClusterMetrics()
        metrics.add_server_stats(
            {"folder.0.puts": 7, "folder.0.live_folders": 3, "memo.requests": 99}
        )
        metrics.add_server_stats({"folder.1.puts": 5})
        assert metrics.server_puts == {"0": 7, "1": 5}
        assert metrics.server_folders == {"0": 3}
