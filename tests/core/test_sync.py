"""Unit tests for the section-6.3 synchronization mechanisms."""

import threading

import pytest

from repro.core.api import NIL
from repro.core.sync import MemoBarrier, MemoLock, MemoSemaphore, SharedRecord
from repro.errors import MemoError


class TestSharedRecord:
    def test_update_cycle(self, memo):
        rec = SharedRecord(memo)
        rec.initialize({"count": 0})
        with rec.update() as cell:
            cell[0] = {"count": cell[0]["count"] + 1}
        assert rec.read() == {"count": 1}

    def test_implicit_lock_during_update(self, memo):
        rec = SharedRecord(memo)
        rec.initialize("v")
        with rec.update():
            # Folder is empty while updating — the implicit lock.
            assert memo.get_skip(rec.key) is NIL

    def test_record_restored_on_exception(self, memo):
        rec = SharedRecord(memo)
        rec.initialize(5)
        with pytest.raises(ValueError):
            with rec.update():
                raise ValueError("boom")
        assert rec.read() == 5

    def test_concurrent_increments_never_lost(self, memo):
        rec = SharedRecord(memo)
        rec.initialize(0)

        def bump(n):
            api = memo.cluster.memo_api("solo", memo.app)
            r = SharedRecord(api, symbol=rec.symbol)
            for _ in range(n):
                with r.update() as cell:
                    cell[0] = cell[0] + 1

        threads = [threading.Thread(target=bump, args=(25,)) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert rec.read() == 100


class TestMemoLock:
    def test_acquire_release(self, memo):
        lock = MemoLock(memo)
        lock.initialize()
        lock.acquire()
        lock.release()

    def test_mutual_exclusion(self, memo):
        lock = MemoLock(memo)
        lock.initialize()
        counter = {"n": 0}

        def work():
            api = memo.cluster.memo_api("solo", memo.app)
            lk = MemoLock(api, symbol=lock.symbol)
            for _ in range(30):
                with lk:
                    v = counter["n"]
                    counter["n"] = v + 1

        threads = [threading.Thread(target=work) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert counter["n"] == 90


class TestMemoSemaphore:
    def test_counting(self, memo):
        sem = MemoSemaphore(memo)
        sem.initialize(2)
        sem.down()
        sem.down()
        # Now empty — up() then down() succeeds again.
        sem.up()
        sem.down()
        sem.up()

    def test_initialized_with_n_memos(self, memo):
        """Section 6.3.2: 'initialized with as many memos as needed'."""
        sem = MemoSemaphore(memo)
        sem.initialize(3)
        drained = list(memo.drain(sem.key))
        assert len(drained) == 3

    def test_negative_permits_rejected(self, memo):
        with pytest.raises(MemoError):
            MemoSemaphore(memo).initialize(-1)

    def test_bounds_concurrency(self, memo):
        sem = MemoSemaphore(memo)
        sem.initialize(2)
        active = {"n": 0, "max": 0}
        guard = threading.Lock()

        def work():
            api = memo.cluster.memo_api("solo", memo.app)
            s = MemoSemaphore(api, symbol=sem.symbol)
            for _ in range(5):
                with s:
                    with guard:
                        active["n"] += 1
                        active["max"] = max(active["max"], active["n"])
                    with guard:
                        active["n"] -= 1

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert active["max"] <= 2


class TestMemoBarrier:
    def test_parties_rendezvous(self, memo):
        barrier = MemoBarrier(memo, parties=3)
        barrier.initialize()
        arrived = []
        released = []
        guard = threading.Lock()

        def party(i):
            api = memo.cluster.memo_api("solo", memo.app)
            b = MemoBarrier(api, parties=3, symbol=barrier.symbol)
            with guard:
                arrived.append(i)
            gen = b.wait()
            with guard:
                released.append((i, gen))

        threads = [threading.Thread(target=party, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(released) == 3
        assert {g for _i, g in released} == {0}

    def test_reusable_generations(self, memo):
        barrier = MemoBarrier(memo, parties=2)
        barrier.initialize()
        gens = []
        guard = threading.Lock()

        def party():
            api = memo.cluster.memo_api("solo", memo.app)
            b = MemoBarrier(api, parties=2, symbol=barrier.symbol)
            for _ in range(3):
                g = b.wait()
                with guard:
                    gens.append(g)

        threads = [threading.Thread(target=party) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert sorted(gens) == [0, 0, 1, 1, 2, 2]

    def test_single_party_no_block(self, memo):
        barrier = MemoBarrier(memo, parties=1)
        barrier.initialize()
        assert barrier.wait() == 0
        assert barrier.wait() == 1

    def test_invalid_parties(self, memo):
        with pytest.raises(MemoError):
            MemoBarrier(memo, parties=0)
