"""Unit tests for the Memo API primitives (paper section 6.1.2)."""

import threading
import time

import pytest

from repro.core.api import NIL, Nil
from repro.core.keys import Key, Symbol
from repro.errors import MemoError
from repro.transferable.scalars import Int32


def key(i=0):
    return Key(Symbol("k"), (i,))


class TestNil:
    def test_singleton(self):
        assert Nil() is NIL

    def test_falsy(self):
        assert not NIL

    def test_repr(self):
        assert repr(NIL) == "NIL"


class TestBasicFunctions:
    def test_put_get(self, memo):
        memo.put(key(), {"answer": 42})
        assert memo.get(key()) == {"answer": 42}

    def test_symbol_as_key(self, memo):
        sym = memo.create_symbol()
        memo.put(sym, "direct")
        assert memo.get(sym) == "direct"

    def test_invalid_key_type(self, memo):
        with pytest.raises(MemoError, match="expected Key or Symbol"):
            memo.put("stringkey", 1)

    def test_get_blocks(self, memo):
        out = []
        t = threading.Thread(target=lambda: out.append(memo.get(key(5))))
        t.start()
        time.sleep(0.05)
        assert out == []
        # Separate API instance: the blocked one holds its connection.
        memo2 = _sibling(memo)
        memo2.put(key(5), "woke")
        t.join(timeout=5)
        assert out == ["woke"]

    def test_get_copy_leaves_value(self, memo):
        memo.put(key(), [1, 2])
        assert memo.get_copy(key()) == [1, 2]
        assert memo.get(key()) == [1, 2]

    def test_get_copy_returns_fresh_object(self, memo):
        memo.put(key(), [1, 2])
        a = memo.get_copy(key())
        b = memo.get_copy(key())
        assert a == b and a is not b
        memo.get(key())

    def test_get_skip_empty(self, memo):
        assert memo.get_skip(key(77)) is NIL

    def test_get_skip_hit(self, memo):
        memo.put(key(), "here")
        assert memo.get_skip(key()) == "here"
        assert memo.get_skip(key()) is NIL

    def test_none_is_storable_and_distinct_from_nil(self, memo):
        memo.put(key(), None)
        got = memo.get_skip(key())
        assert got is None and got is not NIL

    def test_get_alt_immediate_hit(self, memo):
        memo.put(key(2), "two")
        found_key, value = memo.get_alt([key(1), key(2), key(3)], timeout=5)
        assert found_key == key(2) and value == "two"

    def test_get_alt_blocks_until_put(self, memo):
        out = []

        def getter():
            out.append(memo.get_alt([key(1), key(2)], timeout=10))

        t = threading.Thread(target=getter)
        t.start()
        time.sleep(0.05)
        assert out == []
        _sibling(memo).put(key(2), "finally")
        t.join(timeout=10)
        assert out and out[0][1] == "finally"

    def test_get_alt_timeout(self, memo):
        with pytest.raises(TimeoutError):
            memo.get_alt([key(1)], timeout=0.1)

    def test_get_alt_skip_nil(self, memo):
        assert memo.get_alt_skip([key(1), key(2)]) is NIL

    def test_get_alt_empty_keys_rejected(self, memo):
        with pytest.raises(MemoError):
            memo.get_alt_skip([])

    def test_get_alt_nondeterministic_choice(self, memo):
        """With several non-empty folders, different folders get picked."""
        chosen = set()
        for _ in range(30):
            memo.put(key(1), "a", wait=True)
            memo.put(key(2), "b", wait=True)
            k, _v = memo.get_alt([key(1), key(2)], timeout=5)
            chosen.add(k.index[0])
            # Drain the other one.
            memo.get_alt([key(1), key(2)], timeout=5)
        assert chosen == {1, 2}


class TestPutDelayed:
    def test_dataflow_trigger(self, memo):
        operand, jar = key(10), key(11)
        memo.put_delayed(operand, jar, {"op": "fire"})
        assert memo.get_skip(jar) is NIL
        memo.put(operand, "data-arrived")
        assert memo.get(jar) == {"op": "fire"}

    def test_wait_variant(self, memo):
        memo.put_delayed(key(1), key(2), "v", wait=True)
        memo.put(key(1), "t", wait=True)
        assert memo.get(key(2)) == "v"


class TestTransferableValues:
    def test_scalar_values(self, memo):
        memo.put(key(), Int32(7))
        assert memo.get(key()) == Int32(7)

    def test_cyclic_value_through_folder(self, memo):
        lst: list = ["cyc"]
        lst.append(lst)
        memo.put(key(), lst)
        out = memo.get(key())
        assert out[1] is out

    def test_strict_domain_rejects_bare_int(self, one_host_cluster):
        strict = one_host_cluster.memo_api("solo", "test", strict_domains=True)
        from repro.errors import EncodingError

        with pytest.raises(EncodingError):
            strict.put(key(), 5)
        strict.put(key(), Int32(5), wait=True)
        assert strict.get(key()) == Int32(5)


class TestDrain:
    def test_drain_yields_all(self, memo):
        for i in range(5):
            memo.put(key(), i)
        assert sorted(memo.drain(key())) == [0, 1, 2, 3, 4]
        assert memo.get_skip(key()) is NIL


def _sibling(memo):
    """A second Memo on the same app/cluster (fresh connection)."""
    return memo.cluster.memo_api("solo", memo.app, process_name="sibling")
