"""Unit tests for MemoFuture and its combinators (no cluster involved)."""

import threading

import pytest

from repro.core.futures import (
    MemoFuture,
    WaitCancelledError,
    as_completed,
    wait_any,
)
from repro.errors import MemoError


class TestCompletion:
    def test_complete_then_result(self):
        f = MemoFuture()
        assert not f.done()
        assert f._complete(42)
        assert f.done() and f.result() == 42 and f.exception() is None

    def test_fail_then_result_raises(self):
        f = MemoFuture()
        f._fail(MemoError("boom"))
        assert f.done()
        assert isinstance(f.exception(), MemoError)
        with pytest.raises(MemoError, match="boom"):
            f.result()

    def test_only_first_resolution_wins(self):
        f = MemoFuture()
        assert f._complete(1)
        assert not f._complete(2)
        assert not f._fail(MemoError("late"))
        assert f.result() == 1

    def test_transform_applies_on_completion(self):
        f = MemoFuture(transform=lambda v: v * 2)
        f._complete(21)
        assert f.result() == 42

    def test_transform_error_fails_the_future(self):
        def bad(_v):
            raise ValueError("decode failed")

        f = MemoFuture(transform=bad)
        f._complete(b"payload")
        with pytest.raises(ValueError, match="decode failed"):
            f.result()


class TestCallbacks:
    def test_callback_runs_on_completion(self):
        f = MemoFuture()
        seen = []
        f.add_done_callback(seen.append)
        assert seen == []
        f._complete("x")
        assert seen == [f]

    def test_callback_added_after_completion_runs_inline(self):
        f = MemoFuture()
        f._complete("x")
        seen = []
        f.add_done_callback(seen.append)
        assert seen == [f]

    def test_callback_errors_are_swallowed(self):
        f = MemoFuture()
        f.add_done_callback(lambda _f: 1 / 0)
        seen = []
        f.add_done_callback(seen.append)
        f._complete("x")  # must not raise, later callbacks still run
        assert seen == [f]


class TestCancellation:
    def test_cancel_without_impl_reports_false(self):
        f = MemoFuture()
        assert not f.cancel()
        assert not f.cancelled()

    def test_cancel_with_impl(self):
        f = MemoFuture(cancel_impl=lambda: True)
        assert f.cancel()
        assert f.cancelled() and f.done()
        with pytest.raises(WaitCancelledError):
            f.result()

    def test_cancel_after_completion_reports_false(self):
        f = MemoFuture(cancel_impl=lambda: True)
        f._complete(7)
        assert not f.cancel()
        assert f.result() == 7

    def test_cancel_impl_losing_race_keeps_result(self):
        f = MemoFuture(cancel_impl=lambda: False)
        f._complete(7)
        assert not f.cancel()
        assert f.result() == 7


class TestWaiting:
    def test_result_timeout_leaves_future_pending(self):
        f = MemoFuture()
        with pytest.raises(TimeoutError):
            f.result(timeout=0.05)
        assert not f.done()
        f._complete(1)
        assert f.result() == 1

    def test_wait_timeout_cancels_when_cancellable(self):
        f = MemoFuture(cancel_impl=lambda: True)
        with pytest.raises(TimeoutError):
            f.wait(timeout=0.05)
        assert f.cancelled()

    def test_wait_timeout_on_uncancellable_raises_but_stays_pending(self):
        f = MemoFuture()
        with pytest.raises(TimeoutError):
            f.wait(timeout=0.05)
        assert not f.done()

    def test_wait_returns_result_when_cancel_loses(self):
        # cancel_impl says "too late": wait must collect the result.
        f = MemoFuture(cancel_impl=lambda: False)
        threading.Timer(0.1, lambda: f._complete("late-win")).start()
        assert f.wait(timeout=0.02) == "late-win"

    def test_external_completion_wakes_plain_wait(self):
        f = MemoFuture()
        threading.Timer(0.05, lambda: f._complete("ok")).start()
        assert f.wait(timeout=5) == "ok"

    def test_step_driving(self):
        hits = []

        def step(slice_s):
            hits.append(slice_s)
            if len(hits) >= 3:
                f._complete("driven")

        f = MemoFuture(step=step)
        assert f.wait(timeout=5) == "driven"
        assert len(hits) == 3

    def test_step_exception_fails_future(self):
        def step(_s):
            raise MemoError("driver died")

        f = MemoFuture(step=step)
        with pytest.raises(MemoError, match="driver died"):
            f.wait(timeout=5)


class TestCombinators:
    def test_wait_any_returns_first_done(self):
        a, b, c = MemoFuture(), MemoFuture(), MemoFuture()
        b._complete("b")
        assert wait_any([a, b, c]) is b

    def test_wait_any_empty_rejected(self):
        with pytest.raises(MemoError):
            wait_any([])

    def test_wait_any_timeout(self):
        with pytest.raises(TimeoutError):
            wait_any([MemoFuture()], timeout=0.05)

    def test_wait_any_drives_steps(self):
        f = MemoFuture(step=lambda _s: f._complete(1))
        assert wait_any([MemoFuture(), f], timeout=5) is f

    def test_as_completed_yields_in_completion_order(self):
        # Completions are paced by the iteration itself (complete the
        # next only once the previous was yielded), so the expected
        # order is deterministic regardless of scan granularity.
        futures = [MemoFuture() for _ in range(3)]
        schedule = [2, 0, 1]
        order = []
        futures[schedule[0]]._complete(schedule[0])
        for f in as_completed(futures, timeout=5):
            order.append(f.result())
            if len(order) < len(schedule):
                futures[schedule[len(order)]]._complete(schedule[len(order)])
        assert order == schedule

    def test_as_completed_timeout_bounds_whole_iteration(self):
        done, pending = MemoFuture(), MemoFuture()
        done._complete(1)
        it = as_completed([pending, done], timeout=0.1)
        assert next(it) is done
        with pytest.raises(TimeoutError):
            next(it)
