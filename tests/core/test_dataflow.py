"""Unit tests for the dataflow support (paper section 6.3.3)."""

import pytest

from repro.core.api import NIL
from repro.core.dataflow import DataflowGraph, when_available
from repro.core.keys import Key
from repro.errors import MemoError


class TestWhenAvailable:
    def test_paper_one_liner(self, memo):
        """memo.put_delayed(operand, job_jar, operation)."""
        operand = Key(memo.create_symbol("operand"))
        jar = Key(memo.create_symbol("jar"))
        when_available(memo, operand, jar, {"op": "add"})
        assert memo.get_skip(jar) is NIL
        memo.put(operand, 42)
        assert memo.get(jar) == {"op": "add"}


class TestDataflowGraph:
    def test_single_node(self, memo):
        g = DataflowGraph(memo)
        g.node("y", ("x",), lambda x: x * 2)
        g.feed("x", 21)
        assert g.run(["y"]) == {"y": 42}

    def test_diamond(self, memo):
        g = DataflowGraph(memo)
        g.node("b", ("a",), lambda a: a + 1)
        g.node("c", ("a",), lambda a: a * 10)
        g.node("d", ("b", "c"), lambda b, c: b + c)
        g.feed("a", 5)
        out = g.run(["d"])
        assert out == {"d": 56}

    def test_chain(self, memo):
        g = DataflowGraph(memo)
        g.node("s1", ("src",), lambda v: v + "1")
        g.node("s2", ("s1",), lambda v: v + "2")
        g.node("s3", ("s2",), lambda v: v + "3")
        g.feed("src", "x")
        assert g.run(["s3"])["s3"] == "x123"

    def test_constant_node(self, memo):
        g = DataflowGraph(memo)
        g.node("k", (), lambda: 7)
        assert g.run(["k"])["k"] == 7

    def test_multiple_outputs(self, memo):
        g = DataflowGraph(memo)
        g.node("a", ("x",), lambda x: x + 1)
        g.node("b", ("x",), lambda x: x - 1)
        g.feed("x", 10)
        assert g.run(["a", "b"]) == {"a": 11, "b": 9}

    def test_feed_after_declaration(self, memo):
        g = DataflowGraph(memo)
        g.node("y", ("x",), lambda x: -x)
        g.feed("x", 3)
        assert g.run(["y"])["y"] == -3

    def test_duplicate_node_rejected(self, memo):
        g = DataflowGraph(memo)
        g.node("n", (), lambda: 1)
        with pytest.raises(MemoError, match="already declared"):
            g.node("n", (), lambda: 2)

    def test_unknown_output_rejected(self, memo):
        g = DataflowGraph(memo)
        with pytest.raises(MemoError, match="unknown"):
            g.run(["nope"])

    def test_unconverged_raises(self, memo):
        g = DataflowGraph(memo)
        g.node("y", ("never-fed",), lambda x: x)
        g._name_ids.setdefault("never-fed", len(g._name_ids) + 1)
        with pytest.raises(MemoError, match="converge"):
            g.run(["y"], max_steps=50)

    def test_fires_once_per_node(self, memo):
        calls = []
        g = DataflowGraph(memo)
        g.node("y", ("a", "b"), lambda a, b: calls.append(1) or a + b)
        g.feed("a", 1)
        g.feed("b", 2)
        assert g.run(["y"])["y"] == 3
        assert len(calls) == 1
