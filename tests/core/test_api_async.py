"""End-to-end tests of the futures-first Memo API on live clusters."""

import threading
import time

import pytest

from repro import NIL, Cluster, Memo, as_completed, system_default_adf, wait_any
from repro.core.keys import Key, Symbol
from repro.errors import MemoError


def key(i=0):
    return Key(Symbol("ak"), (i,))


def sibling(memo, name="sibling"):
    return memo.cluster.memo_api("solo", memo.app, process_name=name)


class TestGetAsync:
    def test_immediate_hit_resolves_without_parking(self, memo):
        memo.put(key(), {"v": 1}, wait=True)
        f = memo.get_async(key())
        assert f.wait(timeout=5) == {"v": 1}
        stats = memo.cluster.servers["solo"].stats.snapshot()
        assert stats["waiters_parked"] == 0

    def test_parked_wait_completes_on_put(self, memo):
        server = memo.cluster.servers["solo"]
        f = memo.get_async(key(1))
        assert not f.done()
        # The GetWait and the put travel on different connections; park
        # first so the completion provably goes through the push path.
        deadline = time.monotonic() + 5
        while server.stats.snapshot()["waiters_active"] != 1:
            assert time.monotonic() < deadline, "wait never parked"
            time.sleep(0.005)
        sibling(memo).put(key(1), "pushed")
        assert f.wait(timeout=5) == "pushed"
        stats = server.stats.snapshot()
        assert stats["waiters_parked"] == 1
        assert stats["waiters_completed"] == 1
        assert stats["push_frames"] >= 1

    def test_get_copy_async_does_not_consume(self, memo):
        f = memo.get_copy_async(key(2))
        sibling(memo).put(key(2), "kept")
        assert f.wait(timeout=5) == "kept"
        assert memo.get_skip(key(2)) == "kept"

    def test_many_copy_waiters_complete_on_one_put(self, memo):
        futures = [memo.get_copy_async(key(3)) for _ in range(5)]
        sibling(memo).put(key(3), "fanout")
        for f in as_completed(futures, timeout=5):
            assert f.result() == "fanout"

    def test_fifo_among_parked_consumers(self, memo):
        futures = [memo.get_async(key(4)) for _ in range(3)]
        sib = sibling(memo)
        sib.put(key(4), "first", wait=True)
        assert futures[0].wait(timeout=5) == "first"
        assert not futures[1].done() and not futures[2].done()
        sib.put(key(4), "second", wait=True)
        assert futures[1].wait(timeout=5) == "second"

    def test_wait_any_across_folders(self, memo):
        fa, fb = memo.get_async(key(5)), memo.get_async(key(6))
        sibling(memo).put(key(6), "b-wins")
        winner = wait_any([fa, fb], timeout=5)
        assert winner is fb and winner.result() == "b-wins"
        fa.cancel()

    def test_error_reply_fails_the_future(self, memo):
        ghost = Memo(sibling(memo).client, app="never-registered")
        f = ghost.get_async(key())
        with pytest.raises(MemoError, match="not registered"):
            f.wait(timeout=5)


class TestCancellation:
    def test_cancel_parked_wait_keeps_the_memo(self, memo):
        f = memo.get_async(key(10))
        assert f.cancel()
        assert f.cancelled()
        sib = sibling(memo)
        sib.put(key(10), "survives", wait=True)
        assert memo.get_skip(key(10)) == "survives"
        stats = memo.cluster.servers["solo"].stats.snapshot()
        assert stats["waiters_cancelled"] >= 1

    def test_cancel_after_completion_reports_false(self, memo):
        memo.put(key(11), 1, wait=True)
        f = memo.get_async(key(11))
        f.wait(timeout=5)
        assert not f.cancel()

    def test_wait_timeout_withdraws_without_eating_a_later_memo(self, memo):
        f = memo.get_async(key(12))
        with pytest.raises(TimeoutError):
            f.wait(timeout=0.2)
        assert f.cancelled()
        sibling(memo).put(key(12), "later", wait=True)
        assert memo.get_skip(key(12)) == "later"


class TestPutAsync:
    def test_ack_future_resolves(self, memo):
        f = memo.put_async(key(20), "acked")
        assert f.wait(timeout=5) is None
        assert memo.get_skip(key(20)) == "acked"

    def test_failed_put_fails_the_future(self, memo):
        ghost = Memo(sibling(memo).client, app="never-registered")
        f = ghost.put_async(key(), 1)
        with pytest.raises(MemoError, match="not registered"):
            f.wait(timeout=5)

    def test_many_acks_compose(self, memo):
        futures = [memo.put_async(key(21), i) for i in range(10)]
        for f in as_completed(futures, timeout=5):
            assert f.exception() is None
        assert sorted(memo.drain(key(21))) == list(range(10))


class TestGetAltAsync:
    def test_immediate_hit(self, memo):
        memo.put(key(30), "hit", wait=True)
        f = memo.get_alt_async([key(30), key(31)])
        k, v = f.wait(timeout=5)
        assert k == key(30) and v == "hit"

    def test_parked_then_completed(self, memo):
        f = memo.get_alt_async([key(32), key(33)])
        assert not f.done()
        sibling(memo).put(key(33), "poll-win")
        k, v = f.wait(timeout=10)
        assert k == key(33) and v == "poll-win"

    def test_cancel_is_local_and_keeps_memos(self, memo):
        f = memo.get_alt_async([key(34)])
        assert f.cancel()
        sibling(memo).put(key(34), "kept", wait=True)
        assert memo.get_skip(key(34)) == "kept"

    def test_empty_keys_rejected(self, memo):
        with pytest.raises(MemoError):
            memo.get_alt_async([])


class TestBlockingWrappersDelegate:
    """The paper API is a thin shell over the async core — same results."""

    def test_get_is_get_async_wait(self, memo):
        out = []
        t = threading.Thread(target=lambda: out.append(memo.get(key(40))))
        t.start()
        # While get blocks, the wait is PARKED — not holding a worker.
        server = memo.cluster.servers["solo"]
        deadline = time.monotonic() + 5
        while server.stats.snapshot()["waiters_active"] != 1:
            assert time.monotonic() < deadline, "blocking get never parked"
            time.sleep(0.005)
        assert out == []
        sibling(memo).put(key(40), "woke")
        t.join(timeout=5)
        assert out == ["woke"]

    def test_put_wait_is_put_async_wait(self, memo):
        memo.put(key(41), "v", wait=True)
        assert memo.get_skip(key(41)) == "v"


class TestDeferredErrorInteractions:
    """Regression coverage: futures machinery vs the deferred-ack error."""

    def test_wait_timeout_preserves_deferred_put_error(self, memo):
        """A timed-out wait's cancellation must neither swallow a pending
        put failure nor hang; the failure surfaces on the next sync call."""
        f = memo.get_async(key(60))
        ghost = Memo(memo.client, app="never-registered")
        ghost.put(key(), 1)  # fire-and-forget; its ack is an error
        with pytest.raises(TimeoutError):
            f.wait(timeout=0.3)
        assert f.cancelled()
        with pytest.raises(MemoError, match="not registered"):
            memo.flush()

    def test_wait_any_drives_futures_on_different_clients(self, memo):
        """No starvation: each pending future's own client gets pumped."""
        other = sibling(memo, "other")
        f_starved = memo.get_async(key(61))  # never completed
        f_other = other.get_async(key(62))  # on a different connection
        feeder = sibling(memo, "feeder")
        feeder.put(key(62), "cross-client")
        winner = wait_any([f_starved, f_other], timeout=10)
        assert winner is f_other and winner.result() == "cross-client"
        f_starved.cancel()

    def test_close_surfaces_error_recorded_before_close(self, memo):
        """An error already absorbed (nothing pending) still raises."""
        ghost = Memo(memo.client, app="never-registered")
        ghost.put(key(), 1)
        # Absorb the error ack without a raising drain: pump until the
        # pending set is empty and the error sits recorded.
        deadline = time.monotonic() + 5
        while memo.client.pending_acks:
            assert time.monotonic() < deadline
            memo.client.pump(0.1)
        with pytest.raises(MemoError, match="not registered"):
            memo.client.close()


class TestContextManagerClose:
    """Satellite bugfix: close flushes pending acks, never abandons them."""

    def test_close_collects_pending_acks(self):
        adf = system_default_adf(["solo"], app="cm")
        with Cluster(adf, idle_timeout=0.5) as cluster:
            cluster.register()
            with cluster.memo_api("solo", "cm") as memo:
                memo.put_many((key(i), i) for i in range(50))
                client = memo.client
            # __exit__ flushed: nothing pending, nothing lost.
            assert client.pending_acks == 0
            check = cluster.memo_api("solo", "cm", "check")
            got = sorted(v for i in range(50) for v in check.drain(key(i)))
            assert got == list(range(50))

    def test_close_surfaces_a_failed_async_put(self):
        adf = system_default_adf(["solo"], app="cm2")
        with Cluster(adf, idle_timeout=0.5) as cluster:
            cluster.register()
            client = cluster.client_for("solo", origin="ghost")
            ghost = Memo(client, app="never-registered")
            with pytest.raises(MemoError, match="not registered"):
                with ghost:
                    ghost.put(key(), 1)  # fire-and-forget; ack will be an error
            # The client is closed even though the flush raised.
            assert client._conn.closed

    def test_plain_close_equivalent(self, memo):
        memo.put(key(50), "x")
        memo.close()
        assert memo.client._conn.closed
