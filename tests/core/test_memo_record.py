"""Unit tests for MemoRecord: payload encoding, copies, identity."""

from repro.core.memo import MemoRecord
from repro.transferable.registry import TransferableRegistry
from repro.transferable.scalars import Int16


class TestFromValue:
    def test_roundtrip(self):
        rec = MemoRecord.from_value({"k": [1, 2]}, origin="p1")
        assert rec.value() == {"k": [1, 2]}
        assert rec.origin == "p1"

    def test_each_decode_is_a_fresh_copy(self):
        rec = MemoRecord.from_value([1, 2, 3])
        a, b = rec.value(), rec.value()
        assert a == b and a is not b

    def test_value_mutation_does_not_affect_record(self):
        rec = MemoRecord.from_value({"n": 1})
        out = rec.value()
        out["n"] = 999
        assert rec.value() == {"n": 1}

    def test_memo_ids_unique(self):
        ids = {MemoRecord.from_value(i).memo_id for i in range(100)}
        assert len(ids) == 100

    def test_size_bytes(self):
        small = MemoRecord.from_value(1)
        big = MemoRecord.from_value(list(range(1000)))
        assert big.size_bytes() > small.size_bytes() > 0
        assert small.size_bytes() == len(small.payload)

    def test_strict_domains_passthrough(self):
        import pytest

        from repro.errors import EncodingError

        with pytest.raises(EncodingError):
            MemoRecord.from_value(7, strict_domains=True)
        rec = MemoRecord.from_value(Int16(7), strict_domains=True)
        assert rec.value() == Int16(7)

    def test_custom_registry(self):
        import dataclasses

        registry = TransferableRegistry()

        @dataclasses.dataclass
        class Box:
            v: int

        registry.register_struct(Box)
        rec = MemoRecord.from_value(Box(3), registry=registry)
        assert rec.value(registry=registry).v == 3

    def test_record_is_frozen(self):
        import pytest

        rec = MemoRecord.from_value(1)
        with pytest.raises(Exception):
            rec.payload = b"tampered"
