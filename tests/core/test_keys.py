"""Unit tests for symbols, keys, and folder names (section 6.1.1)."""

import pytest

from repro.core.keys import FolderName, Key, Symbol, SymbolFactory
from repro.errors import MemoError
from repro.transferable.wire import decode, encode


class TestSymbol:
    def test_equality_by_name(self):
        assert Symbol("a") == Symbol("a")
        assert Symbol("a") != Symbol("b")

    def test_empty_name_rejected(self):
        with pytest.raises(MemoError):
            Symbol("")

    def test_reserved_characters_rejected(self):
        with pytest.raises(MemoError):
            Symbol("has/slash")
        with pytest.raises(MemoError):
            Symbol("has\x00nul")

    def test_call_builds_key(self):
        s = Symbol("arr")
        assert s(1, 2) == Key(s, (1, 2))

    def test_transferable(self):
        assert decode(encode(Symbol("x"))) == Symbol("x")


class TestSymbolFactory:
    def test_unique_within_factory(self):
        f = SymbolFactory("proc1")
        assert f.create() != f.create()

    def test_unique_across_scopes(self):
        a = SymbolFactory("proc1").create()
        b = SymbolFactory("proc2").create()
        assert a != b

    def test_hint_embedded(self):
        assert SymbolFactory("p").create("jar").name.startswith("jar.")

    def test_thread_safety(self):
        import threading

        f = SymbolFactory("p")
        out = []
        lock = threading.Lock()

        def mint():
            for _ in range(200):
                s = f.create()
                with lock:
                    out.append(s.name)

        threads = [threading.Thread(target=mint) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(out) == len(set(out)) == 800


class TestKey:
    def test_paper_array_key_construction(self):
        """Section 6.2.2: key.S = a; key.X = [i, j, 0]."""
        a = Symbol("a")
        key = Key(a, (3, 4, 0))
        assert key.symbol == a
        assert key.index == (3, 4, 0)

    def test_list_index_coerced_to_tuple(self):
        assert Key(Symbol("s"), [1, 2]).index == (1, 2)

    def test_negative_index_rejected(self):
        with pytest.raises(MemoError):
            Key(Symbol("s"), (-1,))

    def test_oversized_index_rejected(self):
        with pytest.raises(MemoError):
            Key(Symbol("s"), (1 << 64,))

    def test_non_int_index_rejected(self):
        with pytest.raises(MemoError):
            Key(Symbol("s"), ("one",))
        with pytest.raises(MemoError):
            Key(Symbol("s"), (True,))

    def test_hashable_and_equal(self):
        assert Key(Symbol("s"), (1,)) == Key(Symbol("s"), (1,))
        assert len({Key(Symbol("s"), (1,)), Key(Symbol("s"), (1,))}) == 1

    def test_canonical_is_stable_and_injective(self):
        seen = {}
        for i in range(50):
            for j in range(5):
                key = Key(Symbol(f"sym{j}"), (i,))
                blob = key.canonical()
                assert blob == key.canonical()
                assert blob not in seen
                seen[blob] = key

    def test_canonical_distinguishes_index_from_name(self):
        # symbol "a" with index (1,) vs symbol "a\x001"-ish collisions
        k1 = Key(Symbol("a"), (1,))
        k2 = Key(Symbol("a"), (1, 0))
        assert k1.canonical() != k2.canonical()

    def test_str(self):
        assert str(Key(Symbol("arr"), (1, 2))) == "arr[1,2]"
        assert str(Key(Symbol("plain"))) == "plain"

    def test_transferable(self):
        key = Key(Symbol("k"), (9, 8))
        assert decode(encode(key)) == key


class TestFolderName:
    def test_app_prefix_distinguishes(self):
        key = Key(Symbol("k"))
        assert FolderName("app1", key) != FolderName("app2", key)
        assert FolderName("app1", key).canonical() != FolderName(
            "app2", key
        ).canonical()

    def test_empty_app_rejected(self):
        with pytest.raises(MemoError):
            FolderName("", Key(Symbol("k")))

    def test_transferable(self):
        f = FolderName("app", Key(Symbol("k"), (1,)))
        assert decode(encode(f)) == f

    def test_str(self):
        assert str(FolderName("inv", Key(Symbol("q"), (2,)))) == "inv:q[2]"
