"""Unit tests for the section-6.2 shared data structures."""

import threading
import time

import pytest

from repro.core.api import NIL
from repro.core.datastructures import (
    Future,
    IStructure,
    JobJar,
    NamedObject,
    SharedArray,
    UnorderedQueue,
)
from repro.errors import MemoError


class TestNamedObject:
    def test_store_peek_take(self, memo):
        obj = NamedObject(memo)
        obj.store({"state": 1}, wait=True)
        assert obj.peek() == {"state": 1}
        assert obj.take() == {"state": 1}
        assert obj.try_take() is NIL

    def test_take_locks(self, memo):
        """While taken, other accessors see an empty folder (implicit lock)."""
        obj = NamedObject(memo)
        obj.store("v", wait=True)
        held = obj.take()
        assert obj.try_take() is NIL
        obj.store(held, wait=True)
        assert obj.try_take() == "v"


class TestSharedArray:
    def test_paper_2d_example(self, memo):
        """a[i,j] stored under key (a, (i, j, 0)) — section 6.2.2."""
        arr = SharedArray(memo, (3, 3))
        arr[1, 2] = "cell"
        key = arr.key_of(1, 2)
        assert key.index == (1, 2, 0)
        assert arr[1, 2] == "cell"

    def test_1d(self, memo):
        arr = SharedArray(memo, (4,))
        arr[2] = 20
        assert arr[2] == 20

    def test_take_removes(self, memo):
        arr = SharedArray(memo, (2,))
        arr[0] = "x"
        assert arr.take(0) == "x"
        assert memo.get_skip(arr.key_of(0)) is NIL

    def test_bounds_checked(self, memo):
        arr = SharedArray(memo, (2, 2))
        with pytest.raises(MemoError, match="out of bounds"):
            arr.key_of(2, 0)
        with pytest.raises(MemoError, match="indices"):
            arr.key_of(0)

    def test_bad_shape(self, memo):
        with pytest.raises(MemoError):
            SharedArray(memo, ())
        with pytest.raises(MemoError):
            SharedArray(memo, (0,))

    def test_fill_row_major(self, memo):
        arr = SharedArray(memo, (2, 2))
        arr.fill(["a", "b", "c", "d"])
        assert [arr[0, 0], arr[0, 1], arr[1, 0], arr[1, 1]] == ["a", "b", "c", "d"]


class TestUnorderedQueue:
    def test_enqueue_dequeue(self, memo):
        q = UnorderedQueue(memo)
        q.enqueue("item", wait=True)
        assert q.dequeue() == "item"

    def test_try_dequeue_empty(self, memo):
        assert UnorderedQueue(memo).try_dequeue() is NIL

    def test_drain(self, memo):
        q = UnorderedQueue(memo)
        for i in range(4):
            q.enqueue(i)
        assert sorted(q.drain()) == [0, 1, 2, 3]

    def test_multiset_semantics(self, memo):
        q = UnorderedQueue(memo)
        for v in ("x", "x", "y"):
            q.enqueue(v)
        assert sorted(q.drain()) == ["x", "x", "y"]


class TestJobJar:
    def test_common_jar(self, memo):
        common = memo.create_symbol("common")
        jar = JobJar(memo, common)
        jar.add({"task": 1}, wait=True)
        assert jar.take_any(timeout=5) == {"task": 1}

    def test_private_preferred_or_common(self, memo):
        common = memo.create_symbol("common")
        private = memo.create_symbol("private")
        jar = JobJar(memo, common, private)
        jar.add_private("mine", wait=True)
        jar.add("anyone", wait=True)
        got = {jar.take_any(timeout=5), jar.take_any(timeout=5)}
        assert got == {"mine", "anyone"}

    def test_no_private_jar_rejects_add_private(self, memo):
        jar = JobJar(memo, memo.create_symbol("c"))
        with pytest.raises(MemoError):
            jar.add_private("x")

    def test_try_take_any_empty(self, memo):
        jar = JobJar(memo, memo.create_symbol("c"))
        assert jar.try_take_any() is NIL

    def test_workers_split_work(self, memo):
        """Two workers drain a common jar; every task done exactly once."""
        common = memo.create_symbol("common")
        boss_jar = JobJar(memo, common)
        for i in range(20):
            boss_jar.add(i)
        memo.flush()
        done = []
        lock = threading.Lock()

        def worker():
            api = memo.cluster.memo_api("solo", memo.app)
            jar = JobJar(api, common)
            while True:
                task = jar.try_take_any()
                if task is NIL:
                    return
                with lock:
                    done.append(task)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert sorted(done) == list(range(20))


class TestFuture:
    def test_resolve_wait(self, memo):
        f = Future(memo)
        f.resolve(99, wait=True)
        assert f.wait() == 99
        assert f.wait() == 99  # wait() leaves it resolved

    def test_claim_consumes_and_folder_vanishes(self, memo):
        f = Future(memo)
        f.resolve("once", wait=True)
        assert f.claim() == "once"
        assert memo.get_skip(f.key) is NIL

    def test_is_resolved(self, memo):
        f = Future(memo)
        assert not f.is_resolved()
        f.resolve(1, wait=True)
        assert f.is_resolved()
        assert f.wait() == 1  # probe restored the value

    def test_consumer_blocks_until_producer(self, memo):
        f = Future(memo)
        out = []
        t = threading.Thread(target=lambda: out.append(f.wait()))
        t.start()
        time.sleep(0.05)
        assert out == []
        producer = memo.cluster.memo_api("solo", memo.app)
        Future(producer, symbol=f.symbol).resolve("produced")
        t.join(timeout=5)
        assert out == ["produced"]

    def test_then_schedules_into_job_jar(self, memo):
        """The non-blocking consumer idiom of section 6.2.5."""
        from repro.core.keys import Key

        f = Future(memo)
        jar_key = Key(memo.create_symbol("jar"))
        f.then(jar_key, {"run": "op1"})
        assert memo.get_skip(jar_key) is NIL
        f.resolve("data", wait=True)
        assert memo.get(jar_key) == {"run": "op1"}


class TestIStructure:
    def test_slot_assignment(self, memo):
        ist = IStructure(memo, 4)
        ist[2] = "slot2"
        assert ist[2] == "slot2"

    def test_gather_blocks_until_all_assigned(self, memo):
        ist = IStructure(memo, 3)
        out = []
        t = threading.Thread(target=lambda: out.append(ist.gather()))
        t.start()
        writer_api = memo.cluster.memo_api("solo", memo.app)
        writer = IStructure(writer_api, 3, symbol=ist.symbol)
        for i in range(3):
            time.sleep(0.02)
            writer[i] = i * 10
        t.join(timeout=5)
        assert out == [[0, 10, 20]]

    def test_bounds(self, memo):
        ist = IStructure(memo, 2)
        with pytest.raises(MemoError):
            ist.key_of(2)
        with pytest.raises(MemoError):
            IStructure(memo, 0)
