"""Placement caching: unit behaviour and routing invalidation.

The epoch-guarded :class:`PlacementCache` memoizes the memo server's
steady-state routing decision; these tests pin the invalidation contract —
re-registration and liveness flips must change routing immediately, never
serve a stale cached chain.
"""

import pytest

from repro import Cluster, system_default_adf
from repro.adf.model import ADF, FolderDecl, HostDecl, ProcessDecl
from repro.adf.topology import fully_connected_links
from repro.core.keys import FolderName, Key, Symbol
from repro.errors import ServerError
from repro.servers.hashing import PlacementCache


def folder(i, app="app"):
    return FolderName(app, Key(Symbol("f"), (i,)))


class TestPlacementCacheUnit:
    def test_get_put_roundtrip(self):
        cache = PlacementCache()
        assert cache.get("k") is None
        cache.put("k", cache.epoch, "value")
        assert cache.get("k") == "value"
        assert len(cache) == 1

    def test_bump_invalidates_everything(self):
        cache = PlacementCache()
        cache.put("a", cache.epoch, 1)
        cache.put("b", cache.epoch, 2)
        cache.bump()
        assert cache.get("a") is None
        assert cache.get("b") is None
        assert len(cache) == 0

    def test_stale_epoch_publish_is_dropped(self):
        """A bump racing a computation must win: the late put is rejected."""
        cache = PlacementCache()
        epoch = cache.epoch  # captured before the "computation"
        cache.bump()  # ...which a registration/failure event interrupts
        cache.put("k", epoch, "stale-route")
        assert cache.get("k") is None

    def test_size_bound_clears(self):
        cache = PlacementCache(max_entries=4)
        for i in range(4):
            cache.put(i, cache.epoch, i)
        cache.put(99, cache.epoch, 99)  # overflow clears, then inserts
        assert len(cache) == 1
        assert cache.get(99) == 99

    def test_rejects_bad_bound(self):
        with pytest.raises(ServerError):
            PlacementCache(max_entries=0)


class TestRoutingInvalidation:
    def test_reregistration_changes_routing(self):
        """After re-registering with a different folder-server set, puts
        must land on the new owner — a cached pre-registration route would
        send them to a host that no longer serves the app's folders."""
        hosts = ["h1", "h2"]
        cluster = Cluster(system_default_adf(hosts, app="app")).start()
        try:
            cluster.register()
            memo = cluster.memo_api("h1", "app")
            # Warm every server's placement cache across both owners.
            for i in range(16):
                memo.put(Key(Symbol("f"), (i,)), i, wait=True)

            # Re-register the same app with all folders served on h1 only.
            new_adf = ADF(app="app")
            new_adf.hosts = [HostDecl(h) for h in hosts]
            new_adf.folders = [FolderDecl("only", "h1")]
            new_adf.processes = [ProcessDecl("0", "boss", "h1")]
            new_adf.links = fully_connected_links(hosts)
            cluster.register(new_adf)

            # Re-put the *same* warmed keys: their cached routes named the
            # old owners, so only a bumped cache lands them on "only"@h1.
            for i in range(16):
                memo.put(Key(Symbol("f"), (i,)), i + 100, wait=True)
            server_h1 = cluster.servers["h1"]
            stores = server_h1.local_folder_servers()
            assert "only" in stores
            held = {
                name
                for name, _m, _d in stores["only"].snapshot_folders(
                    lambda n: n.app == "app"
                )
            }
            assert {folder(i) for i in range(16)} <= held
        finally:
            cluster.stop()

    def test_kill_host_changes_routing(self):
        """A liveness flip must invalidate cached candidate lists: reads of
        folders primaried on the dead host have to fail over to a backup."""
        hosts = ["h1", "h2", "h3"]
        adf = system_default_adf(hosts, app="app", replication_factor=2)
        cluster = Cluster(
            adf, heartbeat_interval=0.05, failure_threshold=2
        ).start()
        try:
            cluster.register()
            memo = cluster.memo_api("h1", "app")
            reg = cluster.servers["h1"].registration("app")
            victims = [
                Key(Symbol("f"), (i,))
                for i in range(200)
                if reg.placement.replica_chain(folder(i))[0][1] == "h2"
            ][:10]
            assert victims, "no folder primaried on h2 in the sample"
            for key in victims:
                memo.put(key, "v", wait=True)
            # Warm h1's routing cache with the healthy candidate lists.
            for key in victims:
                assert memo.get_copy(key) == "v"

            epoch_before = cluster.servers["h1"].placement_cache.epoch
            cluster.kill_host("h2")
            # Every get must now route past the dead primary to a backup.
            for key in victims:
                assert memo.get_copy(key) == "v"
            assert cluster.servers["h1"].placement_cache.epoch > epoch_before
            assert cluster.servers["h1"].stats.snapshot()["failover_dispatches"] >= 0
        finally:
            cluster.stop()

    def test_steady_state_routing_uses_cache(self):
        """Repeated requests for the same folder hit the cache, and the
        cached route stays byte-identical to the recomputed one."""
        cluster = Cluster(system_default_adf(["h1", "h2"], app="app")).start()
        try:
            cluster.register()
            memo = cluster.memo_api("h1", "app")
            key = Key(Symbol("hot"), (7,))
            for _ in range(5):
                memo.put(key, 1, wait=True)
            server = cluster.servers["h1"]
            name = FolderName("app", key)
            cached = server.placement_cache.get(("app", name.canonical()))
            assert cached is not None
            chain, candidates = cached
            reg = server.registration("app")
            assert chain == reg.placement.replica_chain(name)
            assert list(chain) == list(candidates)
        finally:
            cluster.stop()
