"""Per-connection pipelining: out-of-order replies, per-folder FIFO, bursts.

The memo server used to serve each connection strictly request-by-request;
correlated requests now dispatch onto a per-connection worker set and the
replies come back tagged, out of order.  These tests pin down the three
load-bearing guarantees:

* a blocked request no longer stalls the requests pipelined behind it
  (replies genuinely reorder);
* puts to the same folder are applied in submission order, pipelining or
  not — including across a burst-forward to the owning host;
* id-less (legacy) frames still get strict request/reply service, ordered
  after the pipelined puts that preceded them.
"""

import threading
import time

import pytest

from repro import Cluster, system_default_adf
from repro.core.keys import FolderName, Key, Symbol
from repro.network.protocol import (
    GetRequest,
    PipelineBatch,
    PutRequest,
    Reply,
    recv_tagged,
    send_message,
)
from repro.network.codec import encode_message
from repro.transferable.wire import decode as tlv_decode
from repro.transferable.wire import encode as tlv_encode


def folder(app, name, i=0):
    return FolderName(app, Key(Symbol(name), (i,)))


@pytest.fixture
def solo_cluster():
    adf = system_default_adf(["solo"], app="pipe")
    with Cluster(adf, idle_timeout=0.5) as cluster:
        cluster.register()
        yield cluster


def recv_replies(conn, count, timeout=10.0):
    """Collect *count* tagged replies, unpacking batches, in arrival order."""
    out = []
    deadline = time.monotonic() + timeout
    while len(out) < count:
        msg, cid = recv_tagged(conn, timeout=max(0.01, deadline - time.monotonic()))
        if isinstance(msg, PipelineBatch):
            from repro.network.protocol import iter_batch_frames

            out.extend(iter_batch_frames(msg.frames))
        else:
            out.append((msg, cid))
    return out


class TestOutOfOrderReplies:
    def test_blocking_get_does_not_stall_pipelined_put(self, solo_cluster):
        server = solo_cluster.servers["solo"]
        conn = solo_cluster._transports["solo"].connect(server.address)
        empty = folder("pipe", "empty")
        other = folder("pipe", "other")
        # cid 1: a get that blocks (folder is empty).  cid 2: a put to a
        # different folder, sent while the get is still parked.
        send_message(conn, GetRequest(empty, mode="get"), corr_id=1)
        send_message(
            conn, PutRequest(folder=other, payload=tlv_encode("v")), corr_id=2
        )
        msg, cid = recv_tagged(conn, timeout=5.0)
        assert cid == 2, "the put's reply must overtake the blocked get"
        assert msg.ok
        # Satisfy the parked get; its tagged reply then arrives too.
        feeder = solo_cluster.client_for("solo", origin="feeder")
        feeder.request(PutRequest(folder=empty, payload=tlv_encode("x")))
        msg, cid = recv_tagged(conn, timeout=5.0)
        assert cid == 1
        assert msg.ok and msg.found
        assert tlv_decode(msg.payload) == "x"
        conn.close()
        feeder.close()

    def test_many_gets_block_in_parallel(self, solo_cluster):
        server = solo_cluster.servers["solo"]
        conn = solo_cluster._transports["solo"].connect(server.address)
        for i in range(4):
            send_message(
                conn, GetRequest(folder("pipe", "par", i), mode="get"), corr_id=10 + i
            )
        feeder = solo_cluster.client_for("solo", origin="feeder")
        # Release in reverse order: replies must come back accordingly.
        for i in reversed(range(4)):
            feeder.request(
                PutRequest(folder=folder("pipe", "par", i), payload=tlv_encode(i))
            )
        got = dict(
            (cid, tlv_decode(msg.payload)) for msg, cid in recv_replies(conn, 4)
        )
        assert got == {10: 0, 11: 1, 12: 2, 13: 3}
        conn.close()
        feeder.close()


class TestPerFolderFifo:
    def test_pipelined_puts_apply_in_submission_order(self, solo_cluster):
        memo = solo_cluster.memo_api("solo", "pipe")
        target = Key(Symbol("fifo"), (0,))
        memo.put_many((target, i) for i in range(100))
        memo.flush()
        fname = folder("pipe", "fifo")
        stores = solo_cluster.servers["solo"].local_folder_servers()
        order = None
        for fs in stores.values():
            snapshot = fs.snapshot_folders(lambda name: name == fname)
            for _name, memos, _delayed in snapshot:
                order = [tlv_decode(r.payload) for r in memos]
        assert order == list(range(100)), "per-folder arrival order broken"

    def test_put_delayed_then_trigger_keeps_order(self, solo_cluster):
        """A delayed park followed by its trigger must not reorder.

        If the pipelined path applied the trigger put before the
        put_delayed parked, the release would never fire.
        """
        memo = solo_cluster.memo_api("solo", "pipe")
        k1, k2 = Key(Symbol("park")), Key(Symbol("dest"))
        memo.put_delayed(k1, k2, "payload")
        memo.put(k1, "trigger")
        memo.flush()
        assert memo.get(k2) == "payload"

    def test_legacy_frame_ordered_after_pipelined_puts(self, solo_cluster):
        """An id-less request observes every pipelined put sent before it."""
        server = solo_cluster.servers["solo"]
        conn = solo_cluster._transports["solo"].connect(server.address)
        target = folder("pipe", "legacy")
        n = 50
        frames = tuple(
            encode_message(
                PutRequest(folder=target, payload=tlv_encode(i)), corr_id=i + 1
            )
            for i in range(n)
        )
        conn.send(encode_message(PipelineBatch(frames)))
        # Strict frame right behind the burst: must see all 50 memos.
        send_message(conn, GetRequest(target, mode="skip"))
        replies = recv_replies(conn, n + 1)
        legacy = [entry for entry in replies if entry[1] is None]
        assert len(legacy) == 1
        assert legacy[0][0].found, "legacy get ran before pipelined puts landed"
        conn.close()


class TestBurstForwarding:
    def test_remote_puts_ride_bursts_and_survive_roundtrip(self):
        adf = system_default_adf(["a", "b"], app="pipe")
        with Cluster(adf, idle_timeout=0.5) as cluster:
            cluster.register()
            memo = cluster.memo_api("a", "pipe")
            n = 300
            memo.put_many((Key(Symbol("burst"), (i,)), {"i": i}) for i in range(n))
            memo.flush()
            # Every memo retrievable with intact payloads, wherever it landed.
            for i in range(n):
                assert memo.get(Key(Symbol("burst"), (i,))) == {"i": i}
            # And the remote side actually served pipelined traffic.
            stats_b = cluster.servers["b"].stats.snapshot()
            assert stats_b["pipelined_requests"] > 0
            assert stats_b["forwards_in"] > 0

    def test_burst_forward_preserves_same_folder_order(self):
        adf = system_default_adf(["a", "b"], app="pipe")
        with Cluster(adf, idle_timeout=0.5) as cluster:
            cluster.register()
            memo = cluster.memo_api("a", "pipe")
            # Find a folder owned by the *remote* host b.
            reg = cluster.servers["a"].registration("pipe")
            key = None
            for i in range(500):
                candidate = Key(Symbol("remote"), (i,))
                chain = reg.placement.replica_chain(FolderName("pipe", candidate))
                if chain[0][1] == "b":
                    key = candidate
                    break
            assert key is not None
            memo.put_many((key, i) for i in range(80))
            memo.flush()
            fname = FolderName("pipe", key)
            order = None
            for fs in cluster.servers["b"].local_folder_servers().values():
                for _n, memos, _d in fs.snapshot_folders(lambda n: n == fname):
                    order = [tlv_decode(r.payload) for r in memos]
            assert order == list(range(80))


class TestPipelineWithFailover:
    def test_pipelined_puts_interleaved_with_kill_host(self):
        """A liveness flip mid-stream must not wedge or corrupt the client.

        The kill bumps the placement cache (via the failure detector's
        transition hook) while put lanes are busy routing; the client's
        accounting must stay exact: every put is either acknowledged or
        counted in the single deferred error.
        """
        adf = system_default_adf(["a", "b", "c"], app="pipe", replication_factor=2)
        with Cluster(
            adf, idle_timeout=1.0, heartbeat_interval=0.05, failure_threshold=2
        ) as cluster:
            cluster.register()
            memo = cluster.memo_api("a", "pipe")
            epoch_before = cluster.servers["a"].placement_cache.epoch
            stop = threading.Event()

            def killer():
                time.sleep(0.05)
                cluster.kill_host("b")
                stop.set()

            thread = threading.Thread(target=killer)
            thread.start()
            sent = 0
            from repro.errors import MemoError

            lost = 0
            for round_no in range(30):
                memo.put_many(
                    (Key(Symbol(f"r{round_no}"), (i,)), i) for i in range(40)
                )
                sent += 40
                try:
                    memo.flush()
                except MemoError as exc:
                    assert "unacknowledged" in str(exc) or "asynchronous" in str(exc)
                    lost += 1
                if stop.is_set() and round_no > 20:
                    break
            thread.join()
            # The client must still be fully usable afterwards.
            memo.put(Key(Symbol("sentinel")), "ok", wait=True)
            assert memo.get(Key(Symbol("sentinel"))) == "ok"
            # The liveness flip invalidated cached routes.
            assert cluster.servers["a"].placement_cache.epoch > epoch_before
            assert memo.client.pending_acks == 0


class TestSessionShutdownDrain:
    def test_queued_requests_get_shutdown_replies_not_silence(self):
        """Stopping the server answers queued pipelined work, never drops it."""
        adf = system_default_adf(["solo"], app="pipe")
        cluster = Cluster(adf, idle_timeout=1.0).start()
        cluster.register()
        server = cluster.servers["solo"]
        conn = cluster._transports["solo"].connect(server.address)
        n = 200
        frames = tuple(
            encode_message(
                PutRequest(
                    folder=folder("pipe", "drain", i), payload=tlv_encode(i)
                ),
                corr_id=i + 1,
            )
            for i in range(n)
        )
        conn.send(encode_message(PipelineBatch(frames)))
        cluster.stop()
        # Every id resolves: an ok ack (applied before the stop) or a
        # shutdown error (drained) — but never silence with an open peer.
        seen = {}
        try:
            while len(seen) < n:
                msg, cid = recv_tagged(conn, timeout=2.0)
                if isinstance(msg, PipelineBatch):
                    from repro.network.protocol import iter_batch_frames

                    for inner, icid in iter_batch_frames(msg.frames):
                        seen[icid] = inner
                else:
                    seen[cid] = msg
        except Exception:
            pass  # connection closing mid-drain loses the tail, that's fine
        for cid, reply in seen.items():
            assert isinstance(reply, Reply)
            assert reply.ok or reply.error.startswith("shutdown:")
