"""Unit tests for the folder server: the directory of unordered queues."""

import threading
import time

import pytest

from repro.core.keys import FolderName, Key, Symbol
from repro.core.memo import MemoRecord
from repro.errors import ShutdownError
from repro.servers.folder_server import FolderServer


def fname(name="f", *index, app="app"):
    return FolderName(app, Key(Symbol(name), tuple(index)))


def record(value):
    return MemoRecord.from_value(value)


@pytest.fixture
def fs():
    server = FolderServer("0", "testhost")
    yield server
    server.shutdown()


class TestPutGet:
    def test_put_then_get(self, fs):
        fs.put(fname(), record(42))
        assert fs.get(fname()).value() == 42

    def test_folder_created_on_demand(self, fs):
        assert fs.folder_count() == 0
        fs.put(fname(), record(1))
        assert fs.folder_count() == 1
        assert fs.stats.folders_created == 1

    def test_get_blocks_until_put(self, fs):
        out = []

        def getter():
            out.append(fs.get(fname()).value())

        t = threading.Thread(target=getter)
        t.start()
        time.sleep(0.05)
        assert out == []
        fs.put(fname(), record("late"))
        t.join(timeout=2)
        assert out == ["late"]
        assert fs.stats.blocked_waits == 1

    def test_get_timeout(self, fs):
        with pytest.raises(TimeoutError):
            fs.get(fname(), timeout=0.05)

    def test_multiple_getters_each_get_one(self, fs):
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(fs.get(fname()).value()))
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        for v in ("a", "b", "c"):
            fs.put(fname(), record(v))
        for t in threads:
            t.join(timeout=2)
        assert sorted(results) == ["a", "b", "c"]

    def test_distinct_folders_are_independent(self, fs):
        fs.put(fname("x"), record(1))
        fs.put(fname("y"), record(2))
        assert fs.get(fname("y")).value() == 2
        assert fs.get(fname("x")).value() == 1

    def test_key_index_distinguishes_folders(self, fs):
        fs.put(fname("a", 0), record("zero"))
        fs.put(fname("a", 1), record("one"))
        assert fs.get(fname("a", 1)).value() == "one"

    def test_app_namespace_distinguishes_folders(self, fs):
        fs.put(fname(app="app1"), record("one"))
        fs.put(fname(app="app2"), record("two"))
        assert fs.get(fname(app="app2")).value() == "two"

    def test_unordered_extraction(self):
        """With many memos, extraction order is not insertion order."""
        fs = FolderServer("0", seed=7)
        for i in range(30):
            fs.put(fname(), record(i))
        out = [fs.get(fname()).value() for i in range(30)]
        assert sorted(out) == list(range(30))
        assert out != list(range(30))
        fs.shutdown()


class TestGetCopySkip:
    def test_get_copy_does_not_consume(self, fs):
        fs.put(fname(), record({"v": 1}))
        assert fs.get_copy(fname()).value() == {"v": 1}
        assert fs.get_copy(fname()).value() == {"v": 1}
        assert fs.get(fname()).value() == {"v": 1}

    def test_copies_are_independent_objects(self, fs):
        fs.put(fname(), record([1, 2]))
        a = fs.get_copy(fname()).value()
        b = fs.get_copy(fname()).value()
        assert a == b and a is not b

    def test_get_skip_hit(self, fs):
        fs.put(fname(), record(9))
        got = fs.get_skip(fname())
        assert got is not None and got.value() == 9

    def test_get_skip_miss_immediate(self, fs):
        start = time.monotonic()
        assert fs.get_skip(fname()) is None
        assert time.monotonic() - start < 0.05
        assert fs.stats.skip_misses == 1


class TestGetAlt:
    def test_first_nonempty_wins(self, fs):
        fs.put(fname("b"), record("bee"))
        hit = fs.get_alt_skip((fname("a"), fname("b"), fname("c")))
        assert hit is not None
        name, rec = hit
        assert name == fname("b") and rec.value() == "bee"

    def test_order_bias_respected(self, fs):
        fs.put(fname("a"), record("ay"))
        fs.put(fname("b"), record("bee"))
        name, _rec = fs.get_alt_skip((fname("a"), fname("b")))
        assert name == fname("a")

    def test_all_empty_returns_none(self, fs):
        assert fs.get_alt_skip((fname("a"), fname("b"))) is None


class TestPutDelayed:
    def test_released_on_next_arrival(self, fs):
        fs.put_delayed(fname("trigger"), fname("dest"), record("delayed"))
        # Not visible anywhere yet.
        assert fs.get_skip(fname("trigger")) is None or True  # trigger empty
        assert fs.get_skip(fname("dest")) is None
        fs.put(fname("trigger"), record("arrival"))
        assert fs.get(fname("dest")).value() == "delayed"
        # The arriving memo itself is still in the trigger folder.
        assert fs.get(fname("trigger")).value() == "arrival"

    def test_delayed_memo_not_extractable_before_release(self, fs):
        fs.put_delayed(fname("t"), fname("d"), record("hidden"))
        assert fs.get_skip(fname("t")) is None
        assert fs.get_skip(fname("d")) is None
        assert fs.stats.delayed_parked == 1
        assert fs.stats.delayed_released == 0

    def test_multiple_delayed_all_release(self, fs):
        for i in range(3):
            fs.put_delayed(fname("t"), fname("d", i), record(i))
        fs.put(fname("t"), record("go"))
        for i in range(3):
            assert fs.get(fname("d", i)).value() == i

    def test_release_to_same_folder(self, fs):
        """put_delayed(k, k, v): v becomes visible in k after an arrival."""
        fs.put_delayed(fname("k"), fname("k"), record("self"))
        fs.put(fname("k"), record("trigger"))
        got = {fs.get(fname("k")).value() for _ in range(2)}
        assert got == {"self", "trigger"}

    def test_releases_cascade(self, fs):
        """A release is itself a put: it triggers the destination folder's
        own parked memos (found by the stateful property test)."""
        fs.put_delayed(fname("a"), fname("b"), record("first"))
        fs.put_delayed(fname("b"), fname("c"), record("second"))
        fs.put(fname("a"), record("go"))
        # arrival in a released "first" into b; that arrival in b released
        # "second" into c.
        assert fs.get(fname("b")).value() == "first"
        assert fs.get(fname("c")).value() == "second"

    def test_emit_put_used_for_foreign_folders(self):
        emitted = []
        fs = FolderServer("0", emit_put=lambda name, rec: emitted.append((name, rec)))
        fs.put_delayed(fname("t"), fname("elsewhere"), record("x"))
        fs.put(fname("t"), record("go"))
        assert len(emitted) == 1
        assert emitted[0][0] == fname("elsewhere")
        fs.shutdown()


class TestFolderLifecycle:
    def test_folder_vanishes_when_empty(self, fs):
        """Futures: 'the folder will vanish once the memo is removed'."""
        fs.put(fname("future"), record(1))
        fs.get(fname("future"))
        assert fs.folder_count() == 0
        assert fs.stats.folders_vanished >= 1

    def test_folder_with_waiters_does_not_vanish(self, fs):
        t = threading.Thread(target=lambda: fs.get(fname("w")))
        t.start()
        time.sleep(0.05)
        assert fs.folder_count() == 1
        fs.put(fname("w"), record(1))
        t.join(timeout=2)

    def test_folder_with_delayed_does_not_vanish(self, fs):
        fs.put_delayed(fname("t"), fname("d"), record(1))
        fs.put(fname("x"), record(1))
        fs.get(fname("x"))
        assert fname("t") in fs.folder_names()

    def test_memo_count(self, fs):
        for i in range(5):
            fs.put(fname("q"), record(i))
        assert fs.memo_count() == 5


class TestShutdown:
    def test_blocked_getters_woken(self):
        fs = FolderServer("0")
        errors = []

        def getter():
            try:
                fs.get(fname())
            except ShutdownError:
                errors.append(True)

        t = threading.Thread(target=getter)
        t.start()
        time.sleep(0.05)
        fs.shutdown()
        t.join(timeout=2)
        assert errors == [True]

    def test_operations_after_shutdown_rejected(self):
        fs = FolderServer("0")
        fs.shutdown()
        with pytest.raises(ShutdownError):
            fs.put(fname(), record(1))
        with pytest.raises(ShutdownError):
            fs.get_skip(fname())
