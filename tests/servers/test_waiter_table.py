"""The session waiter table: O(1)-thread parking, cancellation, fail-over.

The acceptance bar for the futures redesign: a large fan-in of blocked
``get_async`` waiters is held as table entries, not threads — killing the
pre-redesign ceiling where every blocked get pinned a per-connection
worker (ROADMAP: "an event-driven waiter table would decouple waiting
from threads").
"""

import threading
import time

import pytest

from repro import Cluster, as_completed, system_default_adf
from repro.core.keys import FolderName, Key, Symbol
from repro.network.protocol import (
    GetWaitRequest,
    MemoReady,
    Reply,
    recv_tagged,
    send_message,
)

FANIN = 1000

#: Server-side thread allowance for the whole fan-in: the puts that
#: complete the waiters ride a handful of lane/cache workers, and the
#: heartbeat/accept machinery wobbles by a couple — nothing may scale
#: with the number of parked waiters.
THREAD_SLACK = 8


def key(i=0):
    return Key(Symbol("wt"), (i,))


def wait_until(predicate, timeout=5.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


class TestThousandWaiterFanIn:
    def test_parked_waiters_hold_no_threads(self, one_host_cluster):
        """1000 blocked get_asyncs on one server: O(1) additional threads."""
        memo = one_host_cluster.memo_api("solo", "test", "fanin")
        baseline = threading.active_count()

        futures = [memo.get_async(key(i)) for i in range(FANIN)]
        # Registration is pipelined: the server's reader is still draining
        # GetWait frames when get_async returns, so poll the gauge up.
        server = one_host_cluster.servers["solo"]
        wait_until(
            lambda: server.stats.snapshot()["waiters_active"] == FANIN,
            timeout=15,
            message="all waiters parked",
        )
        parked = threading.active_count()
        assert parked - baseline <= THREAD_SLACK, (
            f"{FANIN} parked waiters grew the thread count by "
            f"{parked - baseline} (baseline {baseline})"
        )
        assert server.stats.snapshot()["waiters_parked"] == FANIN

        feeder = one_host_cluster.memo_api("solo", "test", "feeder")
        feeder.put_many((key(i), i) for i in range(FANIN))
        feeder.flush()

        got = sorted(f.result() for f in as_completed(futures, timeout=30))
        assert got == list(range(FANIN))
        stats = one_host_cluster.servers["solo"].stats.snapshot()
        assert stats["waiters_active"] == 0
        assert stats["waiters_completed"] == FANIN
        assert stats["push_frames"] >= FANIN
        # And the completion burst still did not scale threads.
        assert threading.active_count() - baseline <= THREAD_SLACK

    def test_gauges_surface_in_cluster_debugging(self, one_host_cluster):
        memo = one_host_cluster.memo_api("solo", "test", "g")
        f = memo.get_async(key(5000))
        wait_until(
            lambda: one_host_cluster.waiter_gauges()["solo"]["active"] == 1,
            message="waiter parked",
        )
        gauges = one_host_cluster.waiter_gauges()["solo"]
        assert gauges["active"] == 1 and gauges["parked"] == 1
        report = one_host_cluster.debug_report()
        assert "waiters active=1" in report
        f.cancel()
        assert one_host_cluster.waiter_gauges()["solo"]["cancelled"] == 1


class TestCancellationPaths:
    def test_client_disconnect_cancels_parked_waiters(self, one_host_cluster):
        server = one_host_cluster.servers["solo"]
        memo = one_host_cluster.memo_api("solo", "test", "dc")
        for i in range(10):
            memo.get_async(key(100 + i))
        wait_until(
            lambda: server.stats.snapshot()["waiters_active"] == 10,
            message="waiters parked",
        )
        memo.client._conn.close()  # simulate the process dying
        wait_until(
            lambda: server.stats.snapshot()["waiters_active"] == 0,
            message="disconnect cancellation",
        )
        assert server.stats.snapshot()["waiters_cancelled"] == 10
        # The waited-on folders vanished with their waiters: nothing leaks.
        live = sum(
            fs.folder_count() for fs in server.local_folder_servers().values()
        )
        assert live == 0

    def test_cancelled_waiter_never_eats_a_memo(self, one_host_cluster):
        memo = one_host_cluster.memo_api("solo", "test", "c")
        f = memo.get_async(key(200))
        assert f.cancel()
        feeder = one_host_cluster.memo_api("solo", "test", "cf")
        feeder.put(key(200), "intact", wait=True)
        assert memo.get_skip(key(200)) == "intact"


class TestWireLevel:
    def _connect(self, cluster):
        server = cluster.servers["solo"]
        return cluster._transports["solo"].connect(server.address)

    def test_duplicate_waiter_token_rejected(self, one_host_cluster):
        conn = self._connect(one_host_cluster)
        try:
            folder = FolderName("test", key(300))
            send_message(
                conn, GetWaitRequest(folder=folder, waiter=7), corr_id=1
            )
            msg, cid = recv_tagged(conn, 5.0)
            assert cid == 1 and isinstance(msg, Reply)
            assert msg.ok and not msg.found  # parked
            send_message(
                conn, GetWaitRequest(folder=folder, waiter=7), corr_id=2
            )
            msg, cid = recv_tagged(conn, 5.0)
            assert cid == 2 and not msg.ok and "already parked" in msg.error
        finally:
            conn.close()

    def test_idless_get_wait_rejected_no_push_to_legacy_peers(
        self, one_host_cluster
    ):
        """Strict (seed-era) sessions must never grow a waiter table."""
        conn = self._connect(one_host_cluster)
        try:
            folder = FolderName("test", key(301))
            send_message(conn, GetWaitRequest(folder=folder, waiter=9))
            msg, cid = recv_tagged(conn, 5.0)
            assert cid is None and not msg.ok
            assert "correlated" in msg.error
            stats = one_host_cluster.servers["solo"].stats.snapshot()
            assert stats["waiters_parked"] == 0
        finally:
            conn.close()

    def test_push_frame_is_idless_and_token_routed(self, one_host_cluster):
        conn = self._connect(one_host_cluster)
        try:
            folder = FolderName("test", key(302))
            send_message(
                conn, GetWaitRequest(folder=folder, waiter=42), corr_id=1
            )
            msg, _cid = recv_tagged(conn, 5.0)
            assert msg.ok and not msg.found
            feeder = one_host_cluster.memo_api("solo", "test", "pf")
            feeder.put(key(302), "pushed", wait=True)
            msg, cid = recv_tagged(conn, 5.0)
            assert cid is None  # unsolicited: no correlation id
            assert isinstance(msg, MemoReady)
            assert msg.waiter == 42
        finally:
            conn.close()


class TestAsyncWaiterSemantics:
    def test_copy_waiters_never_starved_by_consumers(self):
        """Copies complete first on any arrival, regardless of parking order."""
        from repro.core.memo import MemoRecord
        from repro.servers.folder_server import FolderServer

        fs = FolderServer("0")
        name = FolderName("t", key(600))
        got = []
        fs.get_async(name, "get", lambda r, e: got.append(("get", r and r.payload, e)))
        fs.get_async(name, "copy", lambda r, e: got.append(("copy", r and r.payload, e)))
        fs.put(name, MemoRecord(payload=b"v", origin=""))
        assert ("copy", b"v", None) in got
        assert ("get", b"v", None) in got
        assert fs.get_skip(name) is None  # the get waiter consumed it

    def test_delivered_push_is_salvaged_off_a_discarded_connection(
        self, one_host_cluster
    ):
        """A MemoReady already sitting in the receive queue completes its
        future even when the connection is torn down unread — the server
        consumed that memo, so dropping the frame would lose it."""
        server = one_host_cluster.servers["solo"]
        memo = one_host_cluster.memo_api("solo", "test", "s")
        future = memo.get_async(key(601))
        wait_until(
            lambda: server.stats.snapshot()["waiters_active"] == 1,
            message="wait parked",
        )
        feeder = one_host_cluster.memo_api("solo", "test", "sf")
        feeder.put(key(601), "salvaged", wait=True)
        wait_until(
            lambda: server.stats.snapshot()["waiters_completed"] == 1,
            message="push sent",
        )
        # Nobody pumped: the push is queued client-side.  Discard the
        # connection as a timeout would.
        client = memo.client
        with client._lock:
            client._discard_connection_locked()
        assert future.done() and future.result() == "salvaged"


class TestMigrationAndFailover:
    def test_parked_wait_resubscribes_through_rebalance(self):
        """Migration cancels the parked wait; the client transparently
        re-subscribes at the folder's new home and still completes."""
        adf = system_default_adf(["alpha", "beta"], app="mig")
        with Cluster(adf, idle_timeout=0.5) as cluster:
            cluster.register()
            reg = cluster.servers["alpha"].registration("mig")
            # A key owned by alpha under the current placement.
            i = 0
            while True:
                k = Key(Symbol("mk"), (i,))
                if reg.placement.place_host(FolderName("mig", k))[1] == "alpha":
                    break
                i += 1
            memo = cluster.memo_api("alpha", "mig", "w")
            future = memo.get_async(k)
            time.sleep(0.1)
            assert not future.done()

            # Rebalance so alpha owns nothing: the folder (with its
            # parked waiter) moves to beta.
            from repro.adf.model import HostDecl

            lopsided = system_default_adf(["alpha", "beta"], app="mig")
            lopsided.hosts = [
                HostDecl(h.name, h.num_procs, h.arch, 10_000.0 if h.name == "alpha" else h.cost)
                for h in lopsided.hosts
            ]
            cluster.rebalance(lopsided)
            feeder = cluster.memo_api("beta", "mig", "f")
            feeder.put(k, "after-move", wait=True)
            assert future.wait(timeout=10) == "after-move"

    def test_parked_wait_survives_kill_and_restart(self):
        adf = system_default_adf(["solo"], app="kr")
        with Cluster(adf, idle_timeout=0.5) as cluster:
            cluster.register()
            memo = cluster.memo_api("solo", "kr", "w")
            future = memo.get_async(key(400))
            time.sleep(0.05)

            cluster.kill_host("solo")
            cluster.restart_host("solo")

            feeder = cluster.memo_api("solo", "kr", "f")
            feeder.put(key(400), "rescued", wait=True)
            assert future.wait(timeout=10) == "rescued"

    def test_remote_folder_wait_completes(self, two_host_cluster):
        """A wait on a remotely-owned folder still resolves as a push."""
        reg = two_host_cluster.servers["alpha"].registration("test")
        i = 0
        while True:
            k = Key(Symbol("rk"), (i,))
            if reg.placement.place_host(FolderName("test", k))[1] == "beta":
                break
            i += 1
        memo = two_host_cluster.memo_api("alpha", "test", "w")
        future = memo.get_async(k)
        time.sleep(0.05)
        assert not future.done()
        stats = two_host_cluster.servers["alpha"].stats.snapshot()
        assert stats["waiters_active"] == 1  # parked on alpha, chased to beta
        feeder = two_host_cluster.memo_api("beta", "test", "f")
        feeder.put(k, "remote", wait=True)
        assert future.wait(timeout=10) == "remote"
