"""Unit tests for thread caching (paper section 4.1)."""

import threading
import time

import pytest

from repro.errors import ServerError
from repro.servers.threadcache import ThreadCache


def test_submit_runs_task():
    cache = ThreadCache(idle_timeout=0.5)
    done = threading.Event()
    cache.submit(done.set)
    assert done.wait(2)
    cache.shutdown()


def test_args_and_kwargs_passed():
    cache = ThreadCache(idle_timeout=0.5)
    out = {}
    done = threading.Event()

    def task(a, b=0):
        out["sum"] = a + b
        done.set()

    cache.submit(task, 2, b=3)
    assert done.wait(2)
    assert out["sum"] == 5
    cache.shutdown()


def test_thread_reuse_after_completion():
    """A second request arriving within the idle window reuses the thread."""
    cache = ThreadCache(idle_timeout=2.0)
    first = threading.Event()
    cache.submit(first.set)
    first.wait(2)
    time.sleep(0.05)  # let the worker park itself
    second = threading.Event()
    cache.submit(second.set)
    second.wait(2)
    time.sleep(0.05)
    stats = cache.stats.snapshot()
    assert stats["threads_created"] == 1
    assert stats["cache_hits"] == 1
    cache.shutdown()


def test_idle_thread_expires():
    """The paper's timer: an idle thread terminates after the timeout."""
    cache = ThreadCache(idle_timeout=0.1)
    done = threading.Event()
    cache.submit(done.set)
    done.wait(2)
    deadline = time.monotonic() + 5
    while cache.idle_count() > 0 and time.monotonic() < deadline:
        time.sleep(0.02)
    assert cache.idle_count() == 0
    assert cache.stats.snapshot()["threads_expired"] == 1
    cache.shutdown()


def test_zero_timeout_disables_caching():
    cache = ThreadCache(idle_timeout=0)
    events = [threading.Event() for _ in range(3)]
    for e in events:
        cache.submit(e.set)
    for e in events:
        assert e.wait(2)
    stats = cache.stats.snapshot()
    assert stats["threads_created"] == 3
    assert stats["cache_hits"] == 0
    cache.shutdown()


def test_concurrent_bursts_all_complete():
    cache = ThreadCache(idle_timeout=1.0)
    counter = {"n": 0}
    lock = threading.Lock()
    done = threading.Semaphore(0)

    def task():
        with lock:
            counter["n"] += 1
        done.release()

    for _ in range(50):
        cache.submit(task)
    for _ in range(50):
        assert done.acquire(timeout=2)
    assert counter["n"] == 50
    cache.shutdown()


def test_task_error_does_not_kill_worker():
    cache = ThreadCache(idle_timeout=1.0)
    errors = []
    cache.set_error_hook(errors.append)

    def bad():
        raise ValueError("boom")

    cache.submit(bad)
    time.sleep(0.1)
    assert len(errors) == 1
    # Worker survived the error and still serves tasks.
    done = threading.Event()
    cache.submit(done.set)
    assert done.wait(2)
    cache.shutdown()


def test_submit_after_shutdown_rejected():
    cache = ThreadCache(idle_timeout=0.5)
    cache.shutdown()
    with pytest.raises(ServerError):
        cache.submit(lambda: None)


def test_negative_timeout_rejected():
    with pytest.raises(ServerError):
        ThreadCache(idle_timeout=-1)


def test_stats_submitted_counter():
    cache = ThreadCache(idle_timeout=0.5)
    done = threading.Semaphore(0)
    for _ in range(5):
        cache.submit(done.release)
    for _ in range(5):
        done.acquire(timeout=2)
    assert cache.stats.snapshot()["submitted"] == 5
    cache.shutdown()
