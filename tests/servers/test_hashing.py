"""Unit tests for cost-weighted folder placement (paper sections 4.1 / 5)."""

import pytest

from repro.core.keys import FolderName, Key, Symbol
from repro.errors import ServerError
from repro.network.routing import RoutingTable
from repro.servers.hashing import FolderPlacement, HashWeightPolicy, weighted_rendezvous


def fname(i: int, app="app") -> FolderName:
    return FolderName(app, Key(Symbol("folder"), (i,)))


def flat_routing(hosts):
    links = {h: {o: 1.0 for o in hosts if o != h} for h in hosts}
    return RoutingTable(links)


class TestWeightedRendezvous:
    def test_deterministic(self):
        weights = {"a": 1.0, "b": 2.0, "c": 1.0}
        key = b"some-folder"
        assert weighted_rendezvous(key, weights) == weighted_rendezvous(key, weights)

    def test_single_server(self):
        assert weighted_rendezvous(b"k", {"only": 1.0}) == "only"

    def test_empty_rejected(self):
        with pytest.raises(ServerError):
            weighted_rendezvous(b"k", {})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ServerError):
            weighted_rendezvous(b"k", {"a": 0.0})

    def test_proportional_shares(self):
        """P(server wins) ≈ weight / Σweights — the section-5 claim."""
        weights = {"w1": 1.0, "w2": 1.0, "w4": 2.0}
        counts = {sid: 0 for sid in weights}
        n = 20_000
        for i in range(n):
            counts[weighted_rendezvous(f"key{i}".encode(), weights)] += 1
        assert counts["w4"] / n == pytest.approx(0.5, abs=0.02)
        assert counts["w1"] / n == pytest.approx(0.25, abs=0.02)

    def test_minimal_disruption(self):
        """Removing one server only remaps that server's keys."""
        weights = {"a": 1.0, "b": 1.0, "c": 1.0}
        smaller = {"a": 1.0, "b": 1.0}
        moved = 0
        for i in range(2000):
            key = f"key{i}".encode()
            before = weighted_rendezvous(key, weights)
            after = weighted_rendezvous(key, smaller)
            if before != "c":
                assert after == before
            else:
                moved += 1
        assert moved > 0


class TestFolderPlacement:
    def hosts(self):
        return {"h1": 1.0, "h2": 1.0, "big": 4.0}

    def servers(self):
        return [("0", "h1"), ("1", "h2"), ("2", "big")]

    def test_all_hosts_agree(self):
        """Consistency without coordination: same inputs → same placement."""
        routing = flat_routing(["h1", "h2", "big"])
        p1 = FolderPlacement(self.servers(), self.hosts(), routing)
        p2 = FolderPlacement(self.servers(), self.hosts(), routing)
        for i in range(500):
            assert p1.place(fname(i)) == p2.place(fname(i))

    def test_powerful_host_gets_more(self):
        routing = flat_routing(["h1", "h2", "big"])
        p = FolderPlacement(self.servers(), self.hosts(), routing)
        counts = {"0": 0, "1": 0, "2": 0}
        for i in range(6000):
            counts[p.place(fname(i))] += 1
        assert counts["2"] > counts["0"] * 2
        assert counts["2"] > counts["1"] * 2

    def test_expected_shares_sum_to_one(self):
        routing = flat_routing(["h1", "h2", "big"])
        p = FolderPlacement(self.servers(), self.hosts(), routing)
        assert sum(p.expected_shares().values()) == pytest.approx(1.0)

    def test_uniform_policy_even_split(self):
        """'With out this control, an even distribution would be seen.'"""
        p = FolderPlacement(
            self.servers(),
            self.hosts(),
            policy=HashWeightPolicy().uniform(),
        )
        counts = {"0": 0, "1": 0, "2": 0}
        n = 9000
        for i in range(n):
            counts[p.place(fname(i))] += 1
        for c in counts.values():
            assert c / n == pytest.approx(1 / 3, abs=0.03)

    def test_multiple_servers_split_host_weight(self):
        """9 servers on one host take the same total share as 1 would."""
        routing = flat_routing(["h1", "h2"])
        single = FolderPlacement(
            [("0", "h1"), ("1", "h2")], {"h1": 1.0, "h2": 1.0}, routing
        )
        split = FolderPlacement(
            [("0", "h1"), ("1", "h2"), ("2", "h2"), ("3", "h2")],
            {"h1": 1.0, "h2": 1.0},
            routing,
        )
        h1_share_single = single.expected_shares()["0"]
        h1_share_split = split.expected_shares()["0"]
        assert h1_share_single == pytest.approx(h1_share_split)

    def test_remote_host_discounted(self):
        """Section 5: machine locality reduces a host's folder share."""
        links = {
            "near": {"mid": 1.0},
            "mid": {"near": 1.0, "far": 10.0},
            "far": {"mid": 10.0},
        }
        routing = RoutingTable(links)
        p = FolderPlacement(
            [("0", "near"), ("1", "far")],
            {"near": 1.0, "far": 1.0},
            routing,
        )
        shares = p.expected_shares()
        assert shares["0"] > shares["1"]

    def test_place_host(self):
        routing = flat_routing(["h1", "h2", "big"])
        p = FolderPlacement(self.servers(), self.hosts(), routing)
        sid, host = p.place_host(fname(1))
        assert p.host_of(sid) == host

    def test_duplicate_server_id_rejected(self):
        with pytest.raises(ServerError):
            FolderPlacement(
                [("0", "h1"), ("0", "h2")],
                self.hosts(),
                flat_routing(["h1", "h2", "big"]),
            )

    def test_missing_host_power_rejected(self):
        with pytest.raises(ServerError):
            FolderPlacement(
                [("0", "mystery")],
                {"h1": 1.0},
                flat_routing(["h1", "mystery"]),
            )

    def test_no_servers_rejected(self):
        with pytest.raises(ServerError):
            FolderPlacement([], self.hosts())

    def test_unknown_server_lookup(self):
        p = FolderPlacement(
            self.servers(), self.hosts(), flat_routing(["h1", "h2", "big"])
        )
        with pytest.raises(ServerError):
            p.host_of("99")

    def test_link_policy_requires_routing(self):
        with pytest.raises(ServerError):
            FolderPlacement(self.servers(), self.hosts(), routing=None)

    def test_app_namespaces_hash_independently(self):
        """The same key in two apps may land on different servers."""
        routing = flat_routing(["h1", "h2", "big"])
        p = FolderPlacement(self.servers(), self.hosts(), routing)
        placements_a = [p.place(fname(i, "appA")) for i in range(200)]
        placements_b = [p.place(fname(i, "appB")) for i in range(200)]
        assert placements_a != placements_b
