"""Unit tests for the memo server: registration, routing, forwarding."""

import pytest

from repro.core.keys import Key, Symbol
from repro.network.protocol import StatsRequest
from repro.runtime.client import MemoClient


def key(i=0):
    return Key(Symbol("k"), (i,))


class TestLocalDispatch:
    def test_put_get_roundtrip(self, one_host_cluster):
        memo = one_host_cluster.memo_api("solo", "test")
        memo.put(key(), "hello", wait=True)
        assert memo.get(key()) == "hello"

    def test_unregistered_app_rejected(self, one_host_cluster):
        memo = one_host_cluster.memo_api("solo", "ghost-app")
        from repro.errors import MemoError

        with pytest.raises(MemoError, match="not registered"):
            memo.get_skip(key())

    def test_stats_reply(self, one_host_cluster):
        memo = one_host_cluster.memo_api("solo", "test")
        memo.put(key(), 1, wait=True)
        stats = one_host_cluster.stats()["solo"]
        assert stats["memo.requests"] >= 1
        assert any(k.endswith(".puts") and v >= 1 for k, v in stats.items())


class TestForwarding:
    def test_cross_host_traffic(self, two_host_cluster):
        """Folders owned by beta are reachable from alpha (Figure 2)."""
        memo_a = two_host_cluster.memo_api("alpha", "test", "pa")
        memo_b = two_host_cluster.memo_api("beta", "test", "pb")
        # Spray enough folders that both hosts own some.
        for i in range(40):
            memo_a.put(key(i), i, wait=True)
        for i in range(40):
            assert memo_b.get(key(i)) == i
        stats = two_host_cluster.stats()
        forwards = sum(s["memo.forwards_out"] for s in stats.values())
        assert forwards > 0

    def test_placement_spreads_over_hosts(self, two_host_cluster):
        memo = two_host_cluster.memo_api("alpha", "test")
        for i in range(60):
            memo.put(key(i), i)
        memo.flush()
        stats = two_host_cluster.stats()
        puts_per_host = {
            host: sum(v for k, v in s.items() if k.endswith(".puts"))
            for host, s in stats.items()
        }
        assert all(p > 0 for p in puts_per_host.values()), puts_per_host

    def test_blocking_get_across_hosts(self, two_host_cluster):
        import threading
        import time

        memo_a = two_host_cluster.memo_api("alpha", "test", "pa")
        memo_b = two_host_cluster.memo_api("beta", "test", "pb")
        results = []

        def getter():
            # Whichever host owns folder key(7), this blocks until the put.
            results.append(memo_b.get(key(7)))

        t = threading.Thread(target=getter)
        t.start()
        time.sleep(0.1)
        assert results == []
        memo_a.put(key(7), "released")
        t.join(timeout=5)
        assert results == ["released"]

    def test_get_alt_spanning_hosts(self, two_host_cluster):
        memo = two_host_cluster.memo_api("alpha", "test")
        keys = [key(i) for i in range(20)]
        memo.put(keys[13], "somewhere", wait=True)
        found_key, value = memo.get_alt(keys, timeout=5)
        assert value == "somewhere"
        assert found_key == keys[13]


class TestMultiApp:
    def test_apps_share_servers_but_not_data(self, two_host_cluster):
        from repro import system_default_adf

        adf2 = system_default_adf(["alpha", "beta"], app="other")
        two_host_cluster.register(adf2)

        memo1 = two_host_cluster.memo_api("alpha", "test")
        memo2 = two_host_cluster.memo_api("alpha", "other")
        memo1.put(key(), "from-test", wait=True)
        memo2.put(key(), "from-other", wait=True)
        assert memo2.get(key()) == "from-other"
        assert memo1.get(key()) == "from-test"

    def test_same_app_name_shares_data(self, two_host_cluster):
        """'By using common application names, different programs will be
        able to communicate' — distribution in time and space."""
        producer = two_host_cluster.memo_api("alpha", "test", "producer")
        consumer = two_host_cluster.memo_api("beta", "test", "consumer")
        producer.put(key(3), "shared", wait=True)
        producer.client.close()  # producer long gone (distributed in time)
        assert consumer.get(key(3)) == "shared"


class TestAsyncPut:
    def test_put_returns_before_ack(self, one_host_cluster):
        memo = one_host_cluster.memo_api("solo", "test")
        memo.put(key(), 1)
        assert memo.client.pending_acks == 1
        memo.flush()
        assert memo.client.pending_acks == 0

    def test_async_put_error_surfaces_on_next_call(self, one_host_cluster):
        from repro.errors import MemoError

        client = one_host_cluster.client_for("solo")
        from repro.core.api import Memo

        memo = Memo(client, "never-registered")
        memo.put(key(), 1)  # silently queued; server will reject
        with pytest.raises(MemoError, match="asynchronous put failed"):
            memo.put(key(), 2)
            memo.flush()

    def test_read_your_writes_ordering(self, one_host_cluster):
        memo = one_host_cluster.memo_api("solo", "test")
        for i in range(20):
            memo.put(key(i), i)  # async
        for i in range(20):
            assert memo.get(key(i)) == i  # drained before each get


class TestNoBroadcast:
    def test_fabric_broadcast_count_zero(self, two_host_cluster):
        memo = two_host_cluster.memo_api("alpha", "test")
        for i in range(30):
            memo.put(key(i), i)
        memo.flush()
        assert two_host_cluster.fabric.broadcast_count == 0


class TestStop:
    def test_blocked_get_gets_error_on_stop(self, two_host_cluster):
        import threading
        import time

        from repro.errors import MemoError

        memo = two_host_cluster.memo_api("alpha", "test")
        outcome = []

        def getter():
            try:
                memo.get(key(999))
            except (MemoError, Exception) as exc:  # noqa: BLE001
                outcome.append(type(exc).__name__)

        t = threading.Thread(target=getter)
        t.start()
        time.sleep(0.1)
        two_host_cluster.stop()
        t.join(timeout=5)
        assert outcome, "blocked getter was not woken by shutdown"
