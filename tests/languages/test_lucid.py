"""Unit tests for the Lucid lexer, parser, and demand-driven evaluator."""

import pytest

from repro.errors import MemoError
from repro.languages.lucid import (
    LocalCache,
    LucidEvaluator,
    MemoCache,
    parse_program,
    tokenize,
)
from repro.languages.lucid.lexer import LucidSyntaxError
from repro.languages.lucid.parser import parse_expression
from repro.languages.lucid import ast


class TestLexer:
    def test_tokens(self):
        toks = tokenize("x = 1 fby x + 2.5; // note")
        kinds = [(t.kind, t.text) for t in toks]
        assert ("ident", "x") in kinds
        assert ("kw", "fby") in kinds
        assert ("num", "2.5") in kinds
        assert all(t.text != "note" for t in toks)

    def test_line_numbers(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks] == [1, 2, 3]

    def test_two_char_operators(self):
        toks = tokenize("a <= b >= c == d != e")
        ops = [t.text for t in toks if t.kind == "op"]
        assert ops == ["<=", ">=", "==", "!="]

    def test_bad_character(self):
        with pytest.raises(LucidSyntaxError):
            tokenize("x = @")


class TestParser:
    def test_fby_binds_loosest(self):
        expr = parse_expression("0 fby n + 1")
        assert isinstance(expr, ast.Fby)
        assert isinstance(expr.tail, ast.BinOp)

    def test_fby_right_associative(self):
        expr = parse_expression("1 fby 2 fby 3")
        assert isinstance(expr, ast.Fby)
        assert isinstance(expr.tail, ast.Fby)

    def test_precedence_arith(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinOp) and expr.right.op == "*"

    def test_if_then_else(self):
        expr = parse_expression("if a > 0 then a else 0 - a")
        assert isinstance(expr, ast.If)

    def test_unary_chain(self):
        expr = parse_expression("not not true")
        assert isinstance(expr, ast.UnOp) and isinstance(expr.operand, ast.UnOp)

    def test_first_next(self):
        assert isinstance(parse_expression("first x"), ast.First)
        assert isinstance(parse_expression("next x"), ast.Next)

    def test_whenever_asa(self):
        assert isinstance(parse_expression("x whenever p"), ast.Whenever)
        assert isinstance(parse_expression("x asa p"), ast.Asa)

    def test_parens(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_program_requires_semicolons(self):
        with pytest.raises(LucidSyntaxError):
            parse_program("x = 1")

    def test_duplicate_equation_rejected(self):
        with pytest.raises(LucidSyntaxError, match="duplicate"):
            parse_program("x = 1; x = 2;")

    def test_undefined_reference_rejected(self):
        with pytest.raises(LucidSyntaxError, match="undefined"):
            parse_program("result = ghost;")

    def test_empty_program_rejected(self):
        with pytest.raises(LucidSyntaxError):
            parse_program("   ")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(LucidSyntaxError):
            parse_expression("1 + 2 extra")


class TestEvaluator:
    def test_natural_numbers(self):
        prog = parse_program("result = 0 fby result + 1;")
        assert LucidEvaluator(prog).run(6) == [0, 1, 2, 3, 4, 5]

    def test_fibonacci(self):
        prog = parse_program(
            "fib = 0 fby nf; nf = 1 fby fib + nf; result = fib;"
        )
        assert LucidEvaluator(prog).run(8) == [0, 1, 1, 2, 3, 5, 8, 13]

    def test_factorial(self):
        prog = parse_program(
            "n = 1 fby n + 1; result = 1 fby result * n;"
        )
        assert LucidEvaluator(prog).run(6) == [1, 1, 2, 6, 24, 120]

    def test_first_and_next(self):
        prog = parse_program("n = 0 fby n + 1; result = first next n;")
        assert LucidEvaluator(prog).run(3) == [1, 1, 1]

    def test_pointwise_if(self):
        prog = parse_program(
            "n = 0 fby n + 1; result = if n % 2 == 0 then n else 0 - n;"
        )
        assert LucidEvaluator(prog).run(5) == [0, -1, 2, -3, 4]

    def test_whenever_filters(self):
        prog = parse_program(
            "n = 0 fby n + 1; result = n whenever n % 3 == 0;"
        )
        assert LucidEvaluator(prog).run(4) == [0, 3, 6, 9]

    def test_asa(self):
        prog = parse_program(
            "n = 0 fby n + 1; result = n asa n * n > 10;"
        )
        # first n with n² > 10 is 4; asa is that constant stream
        assert LucidEvaluator(prog).run(3) == [4, 4, 4]

    def test_boolean_stream(self):
        prog = parse_program(
            "n = 0 fby n + 1; result = n > 1 and n < 4;"
        )
        assert LucidEvaluator(prog).run(5) == [False, False, True, True, False]

    def test_running_sum(self):
        prog = parse_program(
            "n = 1 fby n + 1; result = n fby result + next n;"
        )
        # partial sums 1, 3, 6, 10 ...
        assert LucidEvaluator(prog).run(4) == [1, 3, 6, 10]

    def test_division_by_zero(self):
        prog = parse_program("result = 1 / 0;")
        with pytest.raises(MemoError, match="division"):
            LucidEvaluator(prog).run(1)

    def test_negative_time_rejected(self):
        prog = parse_program("result = 1;")
        with pytest.raises(MemoError):
            LucidEvaluator(prog).value_of("result", -1)

    def test_whenever_never_true(self):
        prog = parse_program("result = 1 whenever false;")
        ev = LucidEvaluator(prog)
        # Patch the scan limit down so the test is fast.
        import repro.languages.lucid.evaluator as mod

        old = mod._MAX_WHENEVER_SCAN
        mod._MAX_WHENEVER_SCAN = 200
        try:
            with pytest.raises(MemoError, match="fewer than"):
                ev.run(1)
        finally:
            mod._MAX_WHENEVER_SCAN = old

    def test_local_cache_hit_accounting(self):
        prog = parse_program("n = 0 fby n + 1; result = n + n;")
        cache = LocalCache()
        LucidEvaluator(prog, cache).run(5)
        assert cache.hits > 0


class TestMemoCacheIntegration:
    def test_evaluation_over_dmemo(self, memo):
        """The memo table lives in folders; results still correct."""
        prog = parse_program("result = 0 fby result + 2;")
        ev = LucidEvaluator(prog, MemoCache(memo))
        assert ev.run(5) == [0, 2, 4, 6, 8]

    def test_two_evaluators_share_results(self, memo):
        prog = parse_program("result = 0 fby result + 1;")
        cache1 = MemoCache(memo, hint="shared")
        ev1 = LucidEvaluator(prog, cache1)
        ev1.run(10)
        # Second evaluator on the same folders: pure cache hits.
        api2 = memo.cluster.memo_api("solo", memo.app)
        cache2 = MemoCache(api2, hint="shared")
        cache2._sym = cache1._sym  # same folder namespace
        cache2._var_ids = dict(cache1._var_ids)
        ev2 = LucidEvaluator(prog, cache2)
        assert ev2.run(10) == list(range(10))
        assert cache2.misses == 0
