"""Tests for the Lucid→MDC translation (paper reference [5])."""

import pytest

from repro.errors import MemoError
from repro.languages.lucid import LucidEvaluator, parse_program
from repro.languages.lucid.mdc_bridge import LucidActorNetwork
from repro.languages.mdc import ActorSystem


@pytest.fixture
def system(one_host_cluster):
    sys_ = ActorSystem(
        one_host_cluster.memo_api("solo", "test", "lucid-sys"),
        memo_factory=lambda n: one_host_cluster.memo_api("solo", "test", n),
    )
    yield sys_
    sys_.shutdown()


PROGRAMS = {
    "constant": ("result = 42;", 4),
    "naturals": ("result = 0 fby result + 1;", 8),
    "fibonacci": ("fib = 0 fby nf; nf = 1 fby fib + nf; result = fib;", 8),
    "pointwise": (
        "n = 0 fby n + 1; result = if n % 2 == 0 then n else 0 - n;",
        6,
    ),
    "first-next": ("n = 0 fby n + 1; result = first next n;", 3),
    "whenever": ("n = 0 fby n + 1; result = n whenever n % 3 == 0;", 4),
}


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_actor_network_matches_sequential_evaluator(system, name):
    """The message-driven translation computes the same streams."""
    source, n = PROGRAMS[name]
    program = parse_program(source)
    expected = LucidEvaluator(program).run(n)
    network = LucidActorNetwork(program, system, prefix=f"net-{name}")
    assert network.run(n, timeout=60) == expected


def test_demands_are_cached_across_requests(system):
    program = parse_program("result = 0 fby result + 1;")
    network = LucidActorNetwork(program, system, prefix="cache")
    assert network.run(5, timeout=60) == [0, 1, 2, 3, 4]
    # Second run hits the actor's cache (still correct, much faster).
    assert network.run(5, timeout=60) == [0, 1, 2, 3, 4]


def test_unknown_variable_demand_rejected(system):
    program = parse_program("result = 1;")
    network = LucidActorNetwork(program, system, prefix="unknown")
    with pytest.raises(MemoError):
        network.demand("ghost", 0)


def test_cross_host_variable_actors(two_host_cluster):
    """Variable-actors distributed over two hosts still converge."""
    import itertools

    hosts = itertools.cycle(["alpha", "beta"])
    system = ActorSystem(
        two_host_cluster.memo_api("alpha", "test", "bridge-sys"),
        memo_factory=lambda n: two_host_cluster.memo_api(next(hosts), "test", n),
    )
    try:
        program = parse_program(
            "fib = 0 fby nf; nf = 1 fby fib + nf; result = fib;"
        )
        network = LucidActorNetwork(program, system, prefix="xhost")
        assert network.run(7, timeout=90) == [0, 1, 1, 2, 3, 5, 8]
    finally:
        system.shutdown()
