"""Unit tests for the MDC actor language."""

import time

import pytest

from repro.core.api import Memo
from repro.errors import MemoError
from repro.languages.mdc import ActorSystem, Behavior
from repro.languages.mdc.actors import ActorRef, _subset_match
from repro.transferable.wire import decode, encode


@pytest.fixture
def actors(one_host_cluster):
    system = ActorSystem(
        one_host_cluster.memo_api("solo", "test", "mdc-system"),
        memo_factory=lambda name: one_host_cluster.memo_api("solo", "test", name),
    )
    yield system
    system.shutdown()


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestPatternMatching:
    def test_subset_match(self):
        assert _subset_match({"type": "inc"}, {"type": "inc", "by": 2})
        assert not _subset_match({"type": "inc"}, {"type": "dec"})
        assert _subset_match({}, {"anything": 1})

    def test_first_matching_rule_wins(self, actors):
        hits = []
        b = Behavior()

        @b.on({"type": "x", "mode": "special"})
        def special(actor, msg):
            hits.append("special")

        @b.on({"type": "x"})
        def generic(actor, msg):
            hits.append("generic")

        ref = actors.spawn("matcher", b)
        actors.send(ref, {"type": "x", "mode": "special"})
        actors.send(ref, {"type": "x"})
        assert wait_until(lambda: len(hits) == 2)
        assert sorted(hits) == ["generic", "special"]

    def test_unmatched_counted(self, actors):
        b = Behavior()

        @b.on({"type": "known"})
        def known(actor, msg):
            pass

        ref = actors.spawn("strict", b)
        actors.send(ref, {"type": "unknown"})
        actor = actors.actor("strict")
        assert wait_until(lambda: actor.unmatched_count == 1)


class TestActorCapabilities:
    def test_state_accumulates(self, actors):
        b = Behavior()

        @b.on({"type": "add"})
        def add(actor, msg):
            actor.state["total"] = actor.state.get("total", 0) + msg["n"]

        ref = actors.spawn("acc", b)
        for n in (1, 2, 3):
            actors.send(ref, {"type": "add", "n": n})
        actor = actors.actor("acc")
        assert wait_until(lambda: actor.state.get("total") == 6)

    def test_send_between_actors(self, actors):
        received = []
        ponger = Behavior()

        @ponger.on({"type": "ping"})
        def pong(actor, msg):
            actor.send(msg["reply_to"], {"type": "pong"})

        sink = Behavior()

        @sink.on({"type": "pong"})
        def got(actor, msg):
            received.append(True)

        p = actors.spawn("ponger", ponger)
        s = actors.spawn("sink", sink)
        actors.send(p, {"type": "ping", "reply_to": s})
        assert wait_until(lambda: received)

    def test_become_changes_behavior(self, actors):
        log = []
        quiet = Behavior()

        @quiet.on({"type": "speak"})
        def silent(actor, msg):
            log.append("...")

        loud = Behavior()

        @loud.on({"type": "speak"})
        def shout(actor, msg):
            log.append("HEY")

        switcher = Behavior()

        @switcher.on({"type": "speak"})
        def first(actor, msg):
            log.append("hello")
            actor.become(loud)

        ref = actors.spawn("switcher", switcher)
        actors.send(ref, {"type": "speak"})
        assert wait_until(lambda: log == ["hello"])
        actors.send(ref, {"type": "speak"})
        assert wait_until(lambda: log == ["hello", "HEY"])

    def test_create_child_actor(self, actors):
        results = []
        child_behavior = Behavior()

        @child_behavior.on({"type": "work"})
        def work(actor, msg):
            results.append(msg["n"] * 2)

        parent = Behavior()

        @parent.on({"type": "delegate"})
        def delegate(actor, msg):
            child = actor.create("child", child_behavior)
            actor.send(child, {"type": "work", "n": msg["n"]})

        ref = actors.spawn("parent", parent)
        actors.send(ref, {"type": "delegate", "n": 21})
        assert wait_until(lambda: results == [42])


class TestRefsAndLifecycle:
    def test_actor_ref_transferable(self, actors):
        b = Behavior()
        ref = actors.spawn("traveler", b)
        assert decode(encode(ref)) == ref

    def test_duplicate_name_rejected(self, actors):
        actors.spawn("unique", Behavior())
        with pytest.raises(MemoError, match="already exists"):
            actors.spawn("unique", Behavior())

    def test_non_dict_message_rejected(self, actors):
        ref = actors.spawn("typed", Behavior())
        with pytest.raises(MemoError, match="dicts"):
            actors.send(ref, "raw string")

    def test_unknown_actor_lookup(self, actors):
        with pytest.raises(MemoError):
            actors.actor("ghost")

    def test_actors_share_one_client_without_factory(self, one_host_cluster):
        """Polling mailboxes keep a shared connection safe for many actors."""
        system = ActorSystem(one_host_cluster.memo_api("solo", "test"))
        log = []
        echo = Behavior()

        @echo.on({"type": "go"})
        def go(actor, msg):
            log.append(msg["n"])

        a = system.spawn("first", echo)
        b = system.spawn("second", echo)
        system.send(a, {"type": "go", "n": 1})
        system.send(b, {"type": "go", "n": 2})
        assert wait_until(lambda: sorted(log) == [1, 2])
        system.shutdown()

    def test_shutdown_joins_actors(self, one_host_cluster):
        system = ActorSystem(
            one_host_cluster.memo_api("solo", "test", "sys2"),
            memo_factory=lambda n: one_host_cluster.memo_api("solo", "test", n),
        )
        system.spawn("a", Behavior())
        system.spawn("b", Behavior())
        system.shutdown()
        assert not system.actor("a")._thread.is_alive()


class TestCrossHostActors(object):
    def test_actors_on_different_hosts(self, two_host_cluster):
        """Refs travel inside messages; mailboxes are host-agnostic."""
        sys_a = ActorSystem(
            two_host_cluster.memo_api("alpha", "test", "sysA"),
            memo_factory=lambda n: two_host_cluster.memo_api("alpha", "test", n),
        )
        sys_b = ActorSystem(
            two_host_cluster.memo_api("beta", "test", "sysB"),
            memo_factory=lambda n: two_host_cluster.memo_api("beta", "test", n),
        )
        received = []
        echo = Behavior()

        @echo.on({"type": "echo"})
        def do_echo(actor, msg):
            actor.send(msg["reply_to"], {"type": "reply", "text": msg["text"]})

        collector = Behavior()

        @collector.on({"type": "reply"})
        def collect(actor, msg):
            received.append(msg["text"])

        remote = sys_b.spawn("remote-echo", echo)
        local = sys_a.spawn("collector", collector)
        sys_a.send(remote, {"type": "echo", "text": "across", "reply_to": local})
        assert wait_until(lambda: received == ["across"])
        sys_a.shutdown()
        sys_b.shutdown()
