"""Unit tests for cost-weighted routing tables, cross-checked with networkx."""

import networkx as nx
import pytest

from repro.errors import RoutingError, TopologyError
from repro.network.routing import RoutingTable


def simple_square():
    """a—b—d and a—c—d, with the b path cheaper."""
    return RoutingTable(
        {
            "a": {"b": 1.0, "c": 5.0},
            "b": {"a": 1.0, "d": 1.0},
            "c": {"a": 5.0, "d": 1.0},
            "d": {"b": 1.0, "c": 1.0},
        }
    )


class TestShortestPaths:
    def test_prefers_cheap_path(self):
        table = simple_square()
        route = table.route("a", "d")
        assert route.hops == ("a", "b", "d")
        assert route.cost == 2.0

    def test_next_hop(self):
        table = simple_square()
        assert table.next_hop("a", "d") == "b"
        assert table.next_hop("b", "c") in ("a", "d")

    def test_self_route(self):
        table = simple_square()
        route = table.route("a", "a")
        assert route.cost == 0.0
        assert route.hop_count == 0

    def test_adjacent(self):
        table = simple_square()
        route = table.route("a", "b")
        assert route.next_hop == "b"
        assert route.hop_count == 1

    def test_costs_beat_hop_count(self):
        """A 3-hop cheap path must beat a 1-hop expensive link."""
        table = RoutingTable(
            {
                "a": {"d": 10.0, "b": 1.0},
                "b": {"a": 1.0, "c": 1.0},
                "c": {"b": 1.0, "d": 1.0},
                "d": {"a": 10.0, "c": 1.0},
            }
        )
        route = table.route("a", "d")
        assert route.hops == ("a", "b", "c", "d")
        assert route.cost == 3.0

    def test_simplex_link_one_way(self):
        table = RoutingTable({"a": {"b": 1.0}, "b": {}})
        assert table.reachable("a", "b")
        assert not table.reachable("b", "a")


class TestErrors:
    def test_unknown_source(self):
        with pytest.raises(RoutingError, match="source"):
            simple_square().route("zz", "a")

    def test_unknown_destination(self):
        with pytest.raises(RoutingError, match="destination"):
            simple_square().route("a", "zz")

    def test_disconnected(self):
        table = RoutingTable({"a": {"b": 1.0}, "b": {"a": 1.0}}, hosts=["a", "b", "island"])
        with pytest.raises(RoutingError, match="no route"):
            table.route("a", "island")
        assert not table.is_connected()

    def test_negative_cost_rejected(self):
        with pytest.raises(TopologyError):
            RoutingTable({"a": {"b": -1.0}, "b": {"a": -1.0}})


class TestProperties:
    def test_connected_square(self):
        assert simple_square().is_connected()

    def test_mean_cost_from_all(self):
        table = RoutingTable(
            {"a": {"b": 2.0}, "b": {"a": 2.0, "c": 4.0}, "c": {"b": 4.0}}
        )
        # paths to b: a->b = 2, c->b = 4 → mean 3
        assert table.mean_cost_from_all("b") == pytest.approx(3.0)

    def test_mean_cost_single_host(self):
        assert RoutingTable({"solo": {}}).mean_cost_from_all("solo") == 0.0

    def test_as_dict_roundtrip(self):
        table = simple_square()
        rebuilt = RoutingTable(table.as_dict())
        assert rebuilt.cost("a", "d") == table.cost("a", "d")


class TestAgainstNetworkx:
    """Cross-check Dijkstra against the reference implementation."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs_match(self, seed):
        import random

        rng = random.Random(seed)
        n = 12
        g = nx.gnm_random_graph(n, 30, seed=seed)
        links: dict[str, dict[str, float]] = {str(i): {} for i in range(n)}
        for u, v in g.edges:
            w = rng.uniform(0.5, 5.0)
            g[u][v]["weight"] = w
            links[str(u)][str(v)] = w
            links[str(v)][str(u)] = w
        table = RoutingTable(links)
        lengths = dict(nx.all_pairs_dijkstra_path_length(g, weight="weight"))
        for u in range(n):
            for v in range(n):
                if v in lengths.get(u, {}):
                    assert table.cost(str(u), str(v)) == pytest.approx(
                        lengths[u][v]
                    ), f"{u}->{v}"
                else:
                    assert not table.reachable(str(u), str(v))

    @pytest.mark.parametrize("seed", range(3))
    def test_route_cost_equals_sum_of_hops(self, seed):
        import random

        rng = random.Random(100 + seed)
        n = 10
        links: dict[str, dict[str, float]] = {str(i): {} for i in range(n)}
        for i in range(n):
            j = (i + 1) % n
            w = rng.uniform(0.1, 3.0)
            links[str(i)][str(j)] = w
            links[str(j)][str(i)] = w
        table = RoutingTable(links)
        for src in map(str, range(n)):
            for dst in map(str, range(n)):
                route = table.route(src, dst)
                total = sum(
                    links[a][b] for a, b in zip(route.hops, route.hops[1:])
                )
                assert route.cost == pytest.approx(total)
