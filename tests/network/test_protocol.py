"""Unit tests for the typed protocol messages and their wire transfer."""

import pytest

from repro.core.keys import FolderName, Key, Symbol
from repro.errors import ProtocolError
from repro.network.connection import Address
from repro.network.protocol import (
    ForwardEnvelope,
    GetAltSkipRequest,
    GetRequest,
    PutDelayedRequest,
    PutRequest,
    RegisterRequest,
    Reply,
    ShutdownRequest,
    StatsRequest,
    recv_message,
    send_message,
)
from repro.network.transport import InMemoryTransport, NetworkFabric
from repro.transferable.wire import decode, encode


def folder(name="f", app="app"):
    return FolderName(app, Key(Symbol(name), (1, 2)))


class TestMessageEncoding:
    @pytest.mark.parametrize(
        "msg",
        [
            PutRequest(folder(), b"payload", "proc1"),
            PutDelayedRequest(folder("a"), folder("b"), b"x", "p"),
            GetRequest(folder(), mode="copy", origin="p"),
            GetAltSkipRequest(folders=(folder("a"), folder("b"))),
            RegisterRequest(
                app="inv",
                links={"h1": {"h2": 1.0}, "h2": {"h1": 1.0}},
                host_costs={"h1": 1.0, "h2": 2.0},
                folder_servers=(("0", "h1"), ("1", "h2")),
            ),
            StatsRequest("p"),
            ShutdownRequest("p"),
            ForwardEnvelope("inv", "h2", b"inner", trail=("h1",)),
            Reply(ok=True, found=True, payload=b"v", folder=folder()),
            Reply(ok=False, error="boom"),
        ],
    )
    def test_roundtrip(self, msg):
        assert decode(encode(msg)) == msg

    def test_get_mode_validated(self):
        with pytest.raises(ProtocolError):
            GetRequest(folder(), mode="peek")

    def test_get_alt_requires_folders(self):
        with pytest.raises(ProtocolError):
            GetAltSkipRequest(folders=())

    def test_reply_stats_dict(self):
        msg = Reply(ok=True, stats={"memo.requests": 5})
        assert decode(encode(msg)).stats == {"memo.requests": 5}


class TestOverConnection:
    def test_send_recv_message(self):
        fabric = NetworkFabric()
        transport = InMemoryTransport(fabric, "h")
        listener = transport.listen(Address("h", 1))
        client = transport.connect(listener.address)
        server = listener.accept(timeout=2)

        sent = PutRequest(folder(), b"data", "me")
        size = send_message(client, sent)
        assert size > 0
        received = recv_message(server, timeout=2)
        assert received == sent

        send_message(server, Reply(ok=True, found=True, payload=b"data"))
        reply = recv_message(client, timeout=2)
        assert isinstance(reply, Reply) and reply.found

        client.close()
        server.close()
        listener.close()

    def test_non_protocol_message_rejected(self):
        fabric = NetworkFabric()
        transport = InMemoryTransport(fabric, "h")
        listener = transport.listen(Address("h", 1))
        client = transport.connect(listener.address)
        server = listener.accept(timeout=2)
        client.send(encode({"not": "a protocol message"}))
        with pytest.raises(ProtocolError):
            recv_message(server, timeout=2)
        client.close()
        server.close()
        listener.close()
