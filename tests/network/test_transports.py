"""Unit tests for the in-memory and TCP transports against the Connection
contract — the same test body runs over both media, which *is* the paper's
portability claim for the communication foundation."""

import threading
import time

import pytest

from repro.errors import CommunicationError, ConnectionClosedError
from repro.network.connection import Address
from repro.network.tcp import TCPTransport
from repro.network.transport import InMemoryTransport, NetworkFabric


def make_memory():
    fabric = NetworkFabric()
    t = InMemoryTransport(fabric, "hostA")
    listener = t.listen(Address("hostA", 1))
    return t, listener, fabric


def make_tcp():
    t = TCPTransport()
    listener = t.listen(Address("hostA", 0))
    return t, listener, None


@pytest.fixture(params=[make_memory, make_tcp], ids=["memory", "tcp"])
def channel(request):
    transport, listener, fabric = request.param()
    client = transport.connect(listener.address)
    server = listener.accept(timeout=5)
    yield client, server, fabric
    client.close()
    server.close()
    listener.close()


class TestConnectionContract:
    def test_send_recv(self, channel):
        client, server, _ = channel
        client.send(b"ping")
        assert server.recv(timeout=5) == b"ping"
        server.send(b"pong")
        assert client.recv(timeout=5) == b"pong"

    def test_ordering_preserved(self, channel):
        client, server, _ = channel
        for i in range(50):
            client.send(f"msg{i}".encode())
        for i in range(50):
            assert server.recv(timeout=5) == f"msg{i}".encode()

    def test_large_message(self, channel):
        client, server, _ = channel
        payload = bytes(i % 256 for i in range(500_000))
        client.send(payload)
        assert server.recv(timeout=10) == payload

    def test_empty_message(self, channel):
        client, server, _ = channel
        client.send(b"")
        assert server.recv(timeout=5) == b""

    def test_recv_timeout(self, channel):
        client, _server, _ = channel
        with pytest.raises(TimeoutError):
            client.recv(timeout=0.05)

    def test_close_wakes_peer(self, channel):
        client, server, _ = channel
        errors = []

        def waiter():
            try:
                server.recv(timeout=5)
            except ConnectionClosedError:
                errors.append(True)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        client.close()
        t.join(timeout=5)
        assert errors == [True]

    def test_send_after_close_rejected(self, channel):
        client, _server, _ = channel
        client.close()
        with pytest.raises(ConnectionClosedError):
            client.send(b"late")

    def test_closed_property(self, channel):
        client, _server, _ = channel
        assert not client.closed
        client.close()
        assert client.closed


class TestListener:
    def test_accept_timeout(self):
        _t, listener, _ = make_memory()
        with pytest.raises(TimeoutError):
            listener.accept(timeout=0.05)
        listener.close()

    def test_connect_to_closed_listener(self):
        t, listener, _ = make_memory()
        listener.close()
        with pytest.raises(ConnectionClosedError):
            t.connect(listener.address)

    def test_duplicate_bind_rejected(self):
        fabric = NetworkFabric()
        t = InMemoryTransport(fabric, "h")
        listener = t.listen(Address("h", 1))
        with pytest.raises(CommunicationError):
            t.listen(Address("h", 1))
        listener.close()

    def test_tcp_dynamic_port_assigned(self):
        t = TCPTransport()
        listener = t.listen(Address("x", 0))
        assert listener.address.port > 0
        listener.close()

    def test_tcp_connect_refused(self):
        t = TCPTransport()
        with pytest.raises(ConnectionClosedError):
            t.connect(Address("x", 1))  # port 1: nothing listening


class TestFabricSimulation:
    def test_latency_applied(self):
        fabric = NetworkFabric()
        fabric.set_latency("hostA", "hostB", 0.08)
        ta = InMemoryTransport(fabric, "hostA")
        tb = InMemoryTransport(fabric, "hostB")
        listener = tb.listen(Address("hostB", 1))
        client = ta.connect(listener.address)
        server = listener.accept(timeout=2)
        start = time.monotonic()
        client.send(b"slow")
        assert server.recv(timeout=2) == b"slow"
        assert time.monotonic() - start >= 0.07

    def test_same_host_zero_latency(self):
        fabric = NetworkFabric()
        fabric.set_latency("hostA", "hostB", 0.5)
        assert fabric.latency("hostA", "hostA") == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(CommunicationError):
            NetworkFabric().set_latency("a", "b", -1)

    def test_traffic_accounting(self):
        _t, listener, fabric = make_memory()
        t2 = InMemoryTransport(fabric, "hostB")
        client = t2.connect(listener.address)
        server = listener.accept(timeout=2)
        client.send(b"12345")
        server.recv(timeout=2)
        traffic = fabric.traffic()
        assert traffic[("hostB", "hostA")].messages == 1
        assert traffic[("hostB", "hostA")].bytes == 5

    def test_reset_traffic(self):
        _t, listener, fabric = make_memory()
        client = InMemoryTransport(fabric, "hostB").connect(listener.address)
        client.send(b"x")
        fabric.reset_traffic()
        assert fabric.traffic() == {}

    def test_broadcast_counter_starts_zero(self):
        assert NetworkFabric().broadcast_count == 0
