"""Compact codec: cross-codec round-trips, back-compat, frame rejection."""

import pytest

from repro.core.keys import FolderName, Key, Symbol
from repro.errors import DecodingError, ProtocolError
from repro.network.codec import (
    COMPACT_MAGIC,
    decode_message,
    encode_message,
)
from repro.network.connection import Address
from repro.durability.records import (
    WalConsume,
    WalDelayed,
    WalDelayedClear,
    WalFolderDrop,
    WalPut,
)
from repro.network.protocol import (
    AddressUpdate,
    CancelWaitRequest,
    DeltaSyncPull,
    ForwardEnvelope,
    GetAltSkipRequest,
    GetRequest,
    GetWaitRequest,
    Heartbeat,
    MemoReady,
    MigrateRequest,
    PutDelayedRequest,
    PutRequest,
    RegisterRequest,
    ReplicatePut,
    Reply,
    ResyncRequest,
    ShutdownRequest,
    StatsRequest,
    SyncPull,
    WaitCancelled,
    recv_message,
    send_message,
)
from repro.network.transport import InMemoryTransport, NetworkFabric
from repro.transferable.wire import MAGIC as TLV_MAGIC
from repro.transferable.wire import encode as tlv_encode


def folder(name="f", app="app", index=(1, 2)):
    return FolderName(app, Key(Symbol(name), index))


# One representative instance per compact protocol message type
# (BurstEnvelope/PipelineBatch are covered by the correlation tests).
ALL_MESSAGES = [
    GetWaitRequest(folder(), mode="copy", waiter=77, origin="p"),
    CancelWaitRequest(waiter=77, origin="p"),
    MemoReady(waiter=77, folder=folder(), payload=b"pp"),
    WaitCancelled(waiter=77, reason="shutdown: gone"),
    PutRequest(folder(), b"payload", "proc1"),
    PutDelayedRequest(folder("a"), folder("b"), b"x", "p"),
    GetRequest(folder(), mode="copy", origin="p"),
    GetAltSkipRequest(folders=(folder("a"), folder("b", index=())), origin="p"),
    RegisterRequest(
        app="inv",
        links={"h1": {"h2": 1.0}, "h2": {"h1": 1.0}},
        host_costs={"h1": 1.0, "h2": 2.5},
        folder_servers=(("0", "h1"), ("1", "h2")),
        replication_factor=2,
    ),
    MigrateRequest(app="inv", origin="p"),
    ReplicatePut(
        app="inv",
        folder=folder(),
        payload=b"pp",
        origin="p",
        delayed=True,
        release_to=folder("g"),
    ),
    Heartbeat(host="h1", origin="p"),
    SyncPull(app="inv", requester="h2", origin="p"),
    DeltaSyncPull(
        app="inv",
        requester="h2",
        primary_lsns={"0": 17, "1": 0},
        replica_marks={"0": 9},
        origin="p",
    ),
    StatsRequest(origin="p"),
    ShutdownRequest(origin="p"),
    AddressUpdate(ports={"h1": 50301, "h2": 50307}, origin="cluster"),
    ResyncRequest(apps=("inv", "pay"), delta=True, deep=True, origin="cluster"),
    ForwardEnvelope("inv", "h2", b"inner-bytes", trail=("h1", "h3")),
    Reply(ok=True, found=True, payload=b"v", folder=folder(), stats={"memo.requests": 5}),
]

_ids = [type(m).__name__ for m in ALL_MESSAGES]

# WAL records are compact-only: they live on disk inside log frames, never
# cross the wire, and so have no TLV fallback to stay compatible with.
WAL_MESSAGES = [
    WalPut(folder(), b"pay", origin="p", src_sid="0", src_lsn=4),
    WalConsume(folder(), digest=(3 << 32) | 12345, delayed=True),
    WalDelayed(folder("a"), folder("b"), b"x", origin="p", src_sid="1", src_lsn=2),
    WalDelayedClear(folder()),
    WalFolderDrop(folder()),
]

_wal_ids = [type(m).__name__ for m in WAL_MESSAGES]


class TestWalRecordRoundTrip:
    @pytest.mark.parametrize("msg", WAL_MESSAGES, ids=_wal_ids)
    def test_compact_roundtrip(self, msg):
        data = encode_message(msg)
        assert data[:2] == COMPACT_MAGIC
        assert decode_message(data) == msg

    @pytest.mark.parametrize("msg", WAL_MESSAGES, ids=_wal_ids)
    def test_truncated_frames_rejected(self, msg):
        data = encode_message(msg)
        for cut in range(4, len(data)):
            with pytest.raises(DecodingError):
                decode_message(data[:cut])


class TestCrossCodecRoundTrip:
    @pytest.mark.parametrize("msg", ALL_MESSAGES, ids=_ids)
    def test_compact_roundtrip(self, msg):
        data = encode_message(msg)
        assert data[:2] == COMPACT_MAGIC
        assert decode_message(data) == msg

    @pytest.mark.parametrize("msg", ALL_MESSAGES, ids=_ids)
    def test_tlv_fallback_still_decodes(self, msg):
        """A seed-era TLV control frame must decode unchanged."""
        data = tlv_encode(msg)
        assert data[:2] == TLV_MAGIC
        assert decode_message(data) == msg

    @pytest.mark.parametrize("msg", ALL_MESSAGES, ids=_ids)
    def test_compact_is_smaller(self, msg):
        assert len(encode_message(msg)) < len(tlv_encode(msg))

    def test_put_request_bytes_reduction_target(self):
        """The acceptance bar: >= 40% fewer wire bytes per PutRequest."""
        msg = PutRequest(folder(), b"x" * 64, "worker-3")
        compact, tlv = len(encode_message(msg)), len(tlv_encode(msg))
        assert compact <= 0.6 * tlv, (compact, tlv)

    def test_unregistered_type_falls_back_to_tlv(self):
        data = encode_message({"plain": ["transferable", 1]})
        assert data[:2] == TLV_MAGIC
        assert decode_message(data) == {"plain": ["transferable", 1]}

    def test_optional_fields_roundtrip(self):
        plain = ReplicatePut(app="a", folder=folder(), payload=b"", origin="")
        assert decode_message(encode_message(plain)) == plain
        empty = Reply()
        assert decode_message(encode_message(empty)) == empty


class TestFrameRejection:
    def test_unknown_magic_rejected(self):
        with pytest.raises(DecodingError, match="bad magic"):
            decode_message(b"ZZ\x01\x01garbage")

    def test_empty_and_tiny_frames_rejected(self):
        for data in (b"", b"D", b"DC", b"DC\x01"):
            with pytest.raises(DecodingError):
                decode_message(data)

    def test_unsupported_version_rejected(self):
        good = encode_message(Heartbeat(host="h"))
        with pytest.raises(DecodingError, match="version"):
            decode_message(good[:2] + b"\x7f" + good[3:])

    def test_unknown_tag_rejected(self):
        good = encode_message(Heartbeat(host="h"))
        with pytest.raises(DecodingError, match="unknown compact message tag"):
            decode_message(good[:3] + b"\xee" + good[4:])

    @pytest.mark.parametrize("msg", ALL_MESSAGES, ids=_ids)
    def test_truncated_frames_rejected(self, msg):
        """Every strict prefix of a compact frame must fail loudly."""
        data = encode_message(msg)
        for cut in range(4, len(data)):
            with pytest.raises(DecodingError):
                decode_message(data[:cut])

    def test_trailing_garbage_rejected(self):
        data = encode_message(Heartbeat(host="h1"))
        with pytest.raises(DecodingError, match="trailing"):
            decode_message(data + b"\x00")

    def test_overlong_varint_rejected(self):
        # Header + PutRequest tag, then a varint that never terminates.
        with pytest.raises(DecodingError):
            decode_message(b"DC\x01\x01" + b"\xff" * 11)

    def test_hostile_folder_fields_rejected_as_decoding_errors(self):
        """Validation failures inside field readers (Symbol/Key/FolderName
        construction) must surface as DecodingError, not raw MemoError."""
        from repro.network import codec as c

        # GetRequest (tag 3) whose folder carries an empty symbol name.
        bad_symbol = bytearray(b"DC\x01\x03")
        c._w_str(bad_symbol, "app")
        c._w_str(bad_symbol, "")  # Symbol("") raises
        c._w_uv(bad_symbol, 0)
        c._w_str(bad_symbol, "get")
        c._w_str(bad_symbol, "")
        with pytest.raises(DecodingError, match="validation"):
            decode_message(bytes(bad_symbol))

        # PutRequest (tag 1) whose key index overflows unsigned 64-bit.
        bad_index = bytearray(b"DC\x01\x01")
        c._w_str(bad_index, "app")
        c._w_str(bad_index, "s")
        c._w_uv(bad_index, 1)
        c._w_uv(bad_index, 1 << 64)  # Key rejects > UINT64_MAX
        c._w_bytes(bad_index, b"")
        c._w_str(bad_index, "")
        with pytest.raises(DecodingError):
            decode_message(bytes(bad_index))

    def test_invalid_field_values_rejected(self):
        """Hostile bytes cannot construct a message validation would refuse."""
        bad_mode = GetRequest(folder(), mode="get")
        data = encode_message(bad_mode)
        # "get" is the last str field before origin; corrupt it to "gXt".
        patched = data.replace(b"\x03get", b"\x03gXt")
        assert patched != data
        with pytest.raises(DecodingError, match="validation"):
            decode_message(patched)


class TestOverConnection:
    def _pair(self):
        fabric = NetworkFabric()
        transport = InMemoryTransport(fabric, "h")
        listener = transport.listen(Address("h", 1))
        client = transport.connect(listener.address)
        server = listener.accept(timeout=2)
        return client, server, listener

    def test_mixed_codec_stream(self):
        """Compact and TLV frames interleave freely on one connection."""
        client, server, listener = self._pair()
        try:
            first = PutRequest(folder(), b"one", "p")
            second = GetRequest(folder(), mode="skip", origin="p")
            send_message(client, first)  # compact framing
            client.send(tlv_encode(second))  # a seed-era peer's framing
            assert recv_message(server, timeout=2) == first
            assert recv_message(server, timeout=2) == second
        finally:
            client.close()
            server.close()
            listener.close()

    def test_garbage_frame_surfaces_as_protocol_error(self):
        client, server, listener = self._pair()
        try:
            client.send(b"\x00\x01\x02\x03")
            with pytest.raises(ProtocolError):
                recv_message(server, timeout=2)
        finally:
            client.close()
            server.close()
            listener.close()
