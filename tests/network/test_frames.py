"""Unit tests for framing: integrity, fragmentation, reassembly."""

import io

import pytest

from repro.errors import ConnectionClosedError, FrameError
from repro.network.frames import (
    HEADER,
    encode_frames,
    frame_overhead,
    read_frame,
    write_frame,
)


def stream_reader(data: bytes):
    """recv_exact over an in-memory byte stream."""
    buf = io.BytesIO(data)

    def recv_exact(n: int) -> bytes:
        out = buf.read(n)
        if len(out) != n:
            raise ConnectionClosedError("stream ended")
        return out

    return recv_exact


def roundtrip(payload: bytes, max_fragment: int = 1 << 20) -> bytes:
    wire = b"".join(encode_frames(payload, max_fragment))
    return read_frame(stream_reader(wire))


class TestRoundtrip:
    @pytest.mark.parametrize("payload", [b"", b"x", b"hello world", bytes(range(256))])
    def test_single_frame(self, payload):
        assert roundtrip(payload) == payload

    def test_large_payload(self):
        payload = bytes(i % 251 for i in range(1_000_000))
        assert roundtrip(payload) == payload

    def test_write_frame_returns_total_bytes(self):
        sent = []
        total = write_frame(sent.append, b"abcdef")
        assert total == sum(len(s) for s in sent)
        assert total == frame_overhead() + 6


class TestFragmentation:
    def test_fragment_count(self):
        frames = encode_frames(b"x" * 1000, max_fragment=300)
        assert len(frames) == 4  # 300+300+300+100

    def test_fragmented_reassembly(self):
        payload = bytes(range(256)) * 10
        wire = b"".join(encode_frames(payload, max_fragment=100))
        assert read_frame(stream_reader(wire)) == payload

    def test_more_flag_set_on_all_but_last(self):
        frames = encode_frames(b"x" * 250, max_fragment=100)
        flags = [HEADER.unpack(f[: HEADER.size])[1] for f in frames]
        assert flags == [1, 1, 0]

    def test_exact_multiple_boundary(self):
        payload = b"x" * 200
        assert roundtrip(payload, max_fragment=100) == payload

    def test_invalid_fragment_size(self):
        with pytest.raises(FrameError):
            encode_frames(b"x", max_fragment=0)

    def test_two_messages_back_to_back(self):
        wire = b"".join(encode_frames(b"first")) + b"".join(encode_frames(b"second"))
        recv = stream_reader(wire)
        assert read_frame(recv) == b"first"
        assert read_frame(recv) == b"second"


class TestIntegrity:
    def test_bad_magic(self):
        wire = bytearray(b"".join(encode_frames(b"data")))
        wire[0] = ord("X")
        with pytest.raises(FrameError, match="magic"):
            read_frame(stream_reader(bytes(wire)))

    def test_corrupt_payload_detected(self):
        wire = bytearray(b"".join(encode_frames(b"data")))
        wire[-1] ^= 0xFF
        with pytest.raises(FrameError, match="checksum"):
            read_frame(stream_reader(bytes(wire)))

    def test_truncated_header(self):
        wire = b"".join(encode_frames(b"data"))[:5]
        with pytest.raises(ConnectionClosedError):
            read_frame(stream_reader(wire))

    def test_truncated_payload(self):
        wire = b"".join(encode_frames(b"data"))[:-2]
        with pytest.raises(ConnectionClosedError):
            read_frame(stream_reader(wire))
