"""Correlated (version-2) compact frames: ids, bursts, and hostile bytes.

The pipelining PR added a correlation id slot to the compact framing
(`DC` version 0x02), the :class:`PipelineBatch`/:class:`BurstEnvelope`
containers, and the split/burst helpers the hot paths use.  TLV frames
stay id-less by design — old peers and recorded seed streams must keep
decoding exactly as before.
"""

import pytest

from repro.core.keys import FolderName, Key, Symbol
from repro.errors import DecodingError, EncodingError
from repro.network.codec import (
    COMPACT_MAGIC,
    CORRELATED_VERSION,
    decode_message,
    decode_tagged,
    encode_correlated_burst,
    encode_message,
    split_correlated,
)
from repro.network.protocol import (
    BurstEnvelope,
    GetRequest,
    PipelineBatch,
    PutRequest,
    Reply,
)
from repro.transferable.wire import encode as tlv_encode


def folder(i=0):
    return FolderName("app", Key(Symbol("k"), (i,)))


SAMPLES = [
    PutRequest(folder=folder(), payload=b"v" * 9, origin="p1"),
    GetRequest(folder=folder(3), mode="skip", origin="p2"),
    Reply(ok=True, found=True, payload=b"x"),
    Reply(ok=False, error="host down: nope"),
]


class TestCorrelatedFrames:
    @pytest.mark.parametrize("cid", [0, 1, 7, 127, 128, 300, 2**20, 2**40])
    def test_roundtrip_preserves_message_and_id(self, cid):
        for msg in SAMPLES:
            got, got_cid = decode_tagged(encode_message(msg, corr_id=cid))
            assert got == msg
            assert got_cid == cid

    def test_plain_frames_carry_no_id(self):
        for msg in SAMPLES:
            got, got_cid = decode_tagged(encode_message(msg))
            assert got == msg
            assert got_cid is None

    def test_tlv_frames_carry_no_id(self):
        got, got_cid = decode_tagged(tlv_encode({"a": 1}))
        assert got == {"a": 1}
        assert got_cid is None

    def test_decode_message_drops_the_id(self):
        msg = SAMPLES[0]
        assert decode_message(encode_message(msg, corr_id=42)) == msg

    def test_v2_frame_is_v1_plus_id(self):
        """The correlated layout is exactly: version byte + uvarint id."""
        msg = SAMPLES[0]
        plain = encode_message(msg)
        tagged = encode_message(msg, corr_id=5)
        assert plain[:2] == tagged[:2] == COMPACT_MAGIC
        assert tagged[2] == CORRELATED_VERSION
        assert tagged[3] == plain[3]  # same type tag
        assert tagged[5:] == plain[4:]  # one-byte id, identical body

    def test_negative_id_rejected(self):
        with pytest.raises(EncodingError):
            encode_message(SAMPLES[0], corr_id=-1)

    def test_unregistered_type_cannot_carry_id(self):
        with pytest.raises(EncodingError):
            encode_message({"plain": "dict"}, corr_id=1)


class TestHostileBytes:
    def test_truncated_mid_id(self):
        frame = encode_message(SAMPLES[0], corr_id=2**40)
        with pytest.raises(DecodingError):
            decode_tagged(frame[:5])

    def test_unknown_version_byte(self):
        frame = bytearray(encode_message(SAMPLES[0], corr_id=1))
        frame[2] = 3
        with pytest.raises(DecodingError):
            decode_tagged(bytes(frame))

    def test_truncated_body_still_detected(self):
        frame = encode_message(SAMPLES[0], corr_id=1)
        with pytest.raises(DecodingError):
            decode_tagged(frame[:-3])

    def test_trailing_garbage_detected(self):
        frame = encode_message(SAMPLES[0], corr_id=1)
        with pytest.raises(DecodingError):
            decode_tagged(frame + b"\x00\x01")


class TestSplitCorrelated:
    def test_split_matches_decode(self):
        frame = encode_message(SAMPLES[0], corr_id=777)
        split = split_correlated(frame)
        assert split is not None
        cid, tagbody = split
        assert cid == 777
        # tag+body equals the id-less encoding minus its 3-byte header.
        assert tagbody == encode_message(SAMPLES[0])[3:]

    def test_non_v2_frames_return_none(self):
        assert split_correlated(encode_message(SAMPLES[0])) is None
        assert split_correlated(tlv_encode([1, 2])) is None
        assert split_correlated(b"") is None
        assert split_correlated(b"DC\x02\x01") is None  # no id byte


class TestContainers:
    def test_pipeline_batch_roundtrip(self):
        frames = tuple(
            encode_message(m, corr_id=i) for i, m in enumerate(SAMPLES)
        )
        got = decode_message(encode_message(PipelineBatch(frames)))
        assert got.frames == frames
        inner = [decode_tagged(f) for f in got.frames]
        assert [m for m, _ in inner] == SAMPLES
        assert [c for _, c in inner] == [0, 1, 2, 3]

    def test_empty_batch_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            PipelineBatch(())

    def test_burst_envelope_roundtrip(self):
        frames = (encode_message(SAMPLES[0], corr_id=9),)
        env = BurstEnvelope(
            app="app", target_host="h2", frames=frames, trail=("h1",)
        )
        got = decode_message(encode_message(env))
        assert got == env

    def test_empty_burst_envelope_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            BurstEnvelope(app="a", target_host="h", frames=())


class TestCorrelatedBurstEncoder:
    def test_burst_encoding_equals_per_message_encoding(self):
        ack = Reply(ok=True, found=True)
        pairs = [(ack, 1), (ack, 2), (SAMPLES[3], 3), (ack, 300)]
        frames = encode_correlated_burst(pairs)
        assert frames == [encode_message(m, corr_id=c) for m, c in pairs]

    def test_shared_instance_bodies_decode_identically(self):
        ack = Reply(ok=True, found=True)
        frames = encode_correlated_burst([(ack, i) for i in range(5)])
        for i, frame in enumerate(frames):
            msg, cid = decode_tagged(frame)
            assert msg == ack
            assert cid == i
