"""TCP framing under poll timeouts: a started frame is never abandoned.

The memo server's connection loop polls ``recv`` with a short timeout so
it can notice shutdown.  Before the fix, a timeout that fired after part
of a frame had been read threw the partial bytes away; the next ``recv``
then decoded from the middle of the stream — garbage for the peer.  Now
the poll timeout applies only until a frame's first byte: a started frame
is drained to completion, and a peer that stalls mid-frame gets the
connection failed (closed), never desynced.
"""

import socket
import threading
import time

import pytest

from repro.errors import ConnectionClosedError
from repro.network.connection import Address
from repro.network.frames import encode_frames
from repro.network.tcp import TCPTransport


@pytest.fixture
def pair():
    transport = TCPTransport()
    listener = transport.listen(Address("loop", 0))
    result = {}

    def accept():
        result["server"] = listener.accept(timeout=5.0)

    thread = threading.Thread(target=accept)
    thread.start()
    raw = socket.create_connection(("127.0.0.1", listener.address.port), 5.0)
    thread.join()
    yield raw, result["server"]
    raw.close()
    result["server"].close()
    listener.close()


class TestPartialFrames:
    def test_slow_frame_survives_short_poll_timeouts(self, pair):
        raw, server = pair
        payload = b"hello-world" * 10
        [frame] = encode_frames(payload)
        half = len(frame) // 2

        def trickle():
            raw.sendall(frame[:half])
            time.sleep(0.6)  # well past the 0.2 s poll timeout below
            raw.sendall(frame[half:])

        thread = threading.Thread(target=trickle)
        thread.start()
        # Poll loop shape: short timeouts until a frame begins.  The frame
        # starts mid-poll and stalls past the timeout — the read must
        # commit and return the whole payload, not abandon the half.
        deadline = time.monotonic() + 5.0
        got = None
        while got is None and time.monotonic() < deadline:
            try:
                got = server.recv(timeout=0.2)
            except TimeoutError:
                continue
        thread.join()
        assert got == payload

    def test_two_frames_with_midframe_pause_stay_in_sync(self, pair):
        raw, server = pair
        [one] = encode_frames(b"first")
        [two] = encode_frames(b"second")

        def send():
            raw.sendall(one[:5])
            time.sleep(0.4)
            raw.sendall(one[5:] + two)

        thread = threading.Thread(target=send)
        thread.start()
        frames = []
        deadline = time.monotonic() + 5.0
        while len(frames) < 2 and time.monotonic() < deadline:
            try:
                frames.append(server.recv(timeout=0.1))
            except TimeoutError:
                continue
        thread.join()
        assert frames == [b"first", b"second"]

    def test_midframe_stall_fails_the_connection_cleanly(self, pair):
        raw, server = pair
        [frame] = encode_frames(b"never-finished")
        raw.sendall(frame[: len(frame) // 2])  # ... and nothing more
        server.drain_timeout = 0.3
        deadline = time.monotonic() + 5.0
        with pytest.raises(ConnectionClosedError):
            while time.monotonic() < deadline:
                server.recv(timeout=0.2)
        assert server.closed

    def test_timeout_before_any_byte_stays_a_clean_timeout(self, pair):
        _raw, server = pair
        with pytest.raises(TimeoutError):
            server.recv(timeout=0.1)
        assert not server.closed
