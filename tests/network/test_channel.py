"""Unit tests for the Transputer-style channel transport (section 3.1.1)."""

import threading
import time

import pytest

from repro.errors import CommunicationError, ConnectionClosedError
from repro.network.channel import ChannelLink, ChannelTransport
from repro.network.connection import Address


@pytest.fixture
def pair():
    link_a, link_b = ChannelLink.create_pair()
    ta = ChannelTransport(link_a, "stationA", "stationB")
    tb = ChannelTransport(link_b, "stationB", "stationA")
    yield ta, tb
    ta.close()
    tb.close()


def open_channel(ta, tb, port=7):
    listener = tb.listen(Address("stationB", port))
    client = ta.connect(Address("stationB", port))
    server = listener.accept(timeout=5)
    return client, server, listener


class TestRawLink:
    def test_byte_stream(self):
        a, b = ChannelLink.create_pair()
        a.write(b"hello")
        assert b.read_exact(5, timeout=2) == b"hello"
        b.write(b"yo")
        assert a.read_exact(2, timeout=2) == b"yo"

    def test_read_blocks_until_bytes(self):
        a, b = ChannelLink.create_pair()
        out = []
        t = threading.Thread(target=lambda: out.append(b.read_exact(3, timeout=5)))
        t.start()
        time.sleep(0.05)
        a.write(b"abc")
        t.join(timeout=5)
        assert out == [b"abc"]

    def test_read_timeout(self):
        _a, b = ChannelLink.create_pair()
        with pytest.raises(TimeoutError):
            b.read_exact(1, timeout=0.05)

    def test_close_wakes_reader(self):
        a, b = ChannelLink.create_pair()
        errors = []

        def reader():
            try:
                b.read_exact(1, timeout=5)
            except ConnectionClosedError:
                errors.append(True)

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        a.close()
        t.join(timeout=5)
        assert errors == [True]


class TestVirtualConnections:
    def test_roundtrip(self, pair):
        ta, tb = pair
        client, server, _l = open_channel(ta, tb)
        client.send(b"ping")
        assert server.recv(timeout=5) == b"ping"
        server.send(b"pong")
        assert client.recv(timeout=5) == b"pong"

    def test_large_message_fragments(self, pair):
        ta, tb = pair
        client, server, _l = open_channel(ta, tb)
        payload = bytes(i % 251 for i in range(100_000))
        client.send(payload)
        assert server.recv(timeout=10) == payload
        assert ta.fragments_sent > 10  # really was fragmented

    def test_multiple_vcs_independent(self, pair):
        ta, tb = pair
        c1, s1, _l1 = open_channel(ta, tb, port=1)
        c2, s2, _l2 = open_channel(ta, tb, port=2)
        c1.send(b"one")
        c2.send(b"two")
        assert s2.recv(timeout=5) == b"two"
        assert s1.recv(timeout=5) == b"one"

    def test_bidirectional_vcs(self, pair):
        ta, tb = pair
        # Connections initiated from both stations simultaneously.
        la = ta.listen(Address("stationA", 9))
        c_from_b = tb.connect(Address("stationA", 9))
        s_on_a = la.accept(timeout=5)
        c_from_a, s_on_b, _l = open_channel(ta, tb, port=10)
        c_from_b.send(b"b->a")
        c_from_a.send(b"a->b")
        assert s_on_a.recv(timeout=5) == b"b->a"
        assert s_on_b.recv(timeout=5) == b"a->b"

    def test_close_propagates(self, pair):
        ta, tb = pair
        client, server, _l = open_channel(ta, tb)
        client.close()
        with pytest.raises(ConnectionClosedError):
            server.recv(timeout=5)

    def test_duplicate_port_rejected(self, pair):
        ta, _tb = pair
        ta.listen(Address("stationA", 5))
        with pytest.raises(CommunicationError):
            ta.listen(Address("stationA", 5))

    def test_empty_message(self, pair):
        ta, tb = pair
        client, server, _l = open_channel(ta, tb)
        client.send(b"")
        assert server.recv(timeout=5) == b""


class TestFairness:
    def test_small_message_not_starved_by_long_winded_one(self):
        """The paper's Transputer complaint, fixed: a huge transfer on one
        VC must not block a tiny message on another (round-robin
        fragmentation amortizes the slow link)."""
        # A deliberately slow wire: 2 MB/s, so 1 MB occupies it for ~0.5 s.
        link_a, link_b = ChannelLink.create_pair(bytes_per_second=2_000_000)
        ta = ChannelTransport(link_a, "stationA", "stationB")
        tb = ChannelTransport(link_b, "stationB", "stationA")
        try:
            big_c, big_s, _l1 = open_channel(ta, tb, port=1)
            small_c, small_s, _l2 = open_channel(ta, tb, port=2)

            arrival = {}

            def recv_big():
                big_s.recv(timeout=30)
                arrival["big"] = time.monotonic()

            def recv_small():
                small_s.recv(timeout=30)
                arrival["small"] = time.monotonic()

            t1 = threading.Thread(target=recv_big)
            t2 = threading.Thread(target=recv_small)
            t1.start()
            t2.start()

            start = time.monotonic()
            big_c.send(b"x" * 1_000_000)  # ~250 fragments, ~0.5 s of wire
            small_c.send(b"tiny")
            t1.join(timeout=30)
            t2.join(timeout=30)
            assert "big" in arrival and "small" in arrival
            # The tiny message interleaves with the long transfer instead
            # of waiting behind it: it must land well before the big one.
            assert arrival["small"] < arrival["big"]
            assert arrival["small"] - start < (arrival["big"] - start) / 2
        finally:
            ta.close()
            tb.close()


class TestDMemoOverChannel:
    def test_memo_servers_over_a_transputer_link(self):
        """A complete two-host D-Memo cluster over one raw channel."""
        from repro.core.keys import Key, Symbol
        from repro.network.connection import Address
        from repro.runtime.client import MemoClient
        from repro.runtime.registration import registration_request_for
        from repro import system_default_adf
        from repro.core.api import Memo
        from repro.network.protocol import recv_message, send_message
        from repro.servers.memo_server import MemoServer

        link_a, link_b = ChannelLink.create_pair()
        ta = ChannelTransport(link_a, "hostA", "hostB")
        tb = ChannelTransport(link_b, "hostB", "hostA")

        book: dict[str, Address] = {}
        server_a = MemoServer("hostA", ta, address_book=book, idle_timeout=0.5)
        server_b = MemoServer("hostB", tb, address_book=book, idle_timeout=0.5)
        server_a.start()
        server_b.start()
        try:
            adf = system_default_adf(["hostA", "hostB"], app="chan")
            request = registration_request_for(adf)
            # Register hostA locally via... the client API needs a local
            # connection; channel transport is point-to-point, so each
            # station registers through its peer's transport.
            for server, transport in ((server_a, tb), (server_b, ta)):
                conn = transport.connect(server.address)
                send_message(conn, request)
                reply = recv_message(conn, timeout=5)
                assert reply.ok, reply.error
                conn.close()

            # An application process on hostB talks to hostA's memo server
            # across the link; folders spread over both hosts.
            client = MemoClient(tb, server_a.address, origin="proc")
            memo = Memo(client, "chan", "proc")
            for i in range(20):
                memo.put(Key(Symbol("q"), (i,)), {"i": i}, wait=True)
            for i in range(20):
                assert memo.get(Key(Symbol("q"), (i,))) == {"i": i}
            client.close()
        finally:
            server_a.stop()
            server_b.stop()
            ta.close()
            tb.close()
