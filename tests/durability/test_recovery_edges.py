"""Crash-consistency edge cases: torn tails, partial/corrupt snapshots,
and crashes between snapshot publication and segment retention."""

import os

from repro.core.keys import FolderName, Key, Symbol
from repro.durability.config import DurabilityConfig
from repro.durability.manager import DurabilityManager
from repro.durability.store import DurableStore

from tests.durability.test_store import FakeServer, folder, open_store, rec, write_puts


def segments(path):
    return sorted(n for n in os.listdir(path) if n.startswith("wal-"))


def snapshots(path):
    return sorted(n for n in os.listdir(path) if n.startswith("snap-"))


class TestTornTail:
    def test_garbage_tail_truncated(self, tmp_path):
        store = open_store(tmp_path)
        server = FakeServer()
        store.bind(server)
        write_puts(store, server, 6)
        store.close()
        seg = tmp_path / "store" / segments(tmp_path / "store")[-1]
        intact = seg.stat().st_size
        with open(seg, "ab") as fh:
            fh.write(b"\x19torn-frame-garbage")  # looks like a frame header

        recovered = FakeServer()
        state = open_store(tmp_path).recover_into(recovered)
        assert state.truncated_bytes > 0
        assert state.lsn == 6
        assert len(recovered.folders[folder()][0]) == 6
        assert seg.stat().st_size == intact  # torn bytes physically removed

    def test_half_written_frame_truncated(self, tmp_path):
        store = open_store(tmp_path)
        server = FakeServer()
        store.bind(server)
        write_puts(store, server, 4)
        store.close()
        seg = tmp_path / "store" / segments(tmp_path / "store")[-1]
        data = seg.read_bytes()
        # Re-append the first half of the last frame: a crash mid-append.
        frame_len = len(data) // 4
        with open(seg, "ab") as fh:
            fh.write(data[: frame_len // 2])

        recovered = FakeServer()
        state = open_store(tmp_path).recover_into(recovered)
        assert state.truncated_bytes > 0
        assert len(recovered.folders[folder()][0]) == 4

    def test_corrupted_crc_truncates_from_there(self, tmp_path):
        store = open_store(tmp_path)
        server = FakeServer()
        store.bind(server)
        write_puts(store, server, 5)
        store.close()
        seg = tmp_path / "store" / segments(tmp_path / "store")[-1]
        data = bytearray(seg.read_bytes())
        data[-1] ^= 0xFF  # flip a CRC byte of the final frame
        seg.write_bytes(bytes(data))

        recovered = FakeServer()
        state = open_store(tmp_path).recover_into(recovered)
        assert state.truncated_bytes > 0
        assert len(recovered.folders[folder()][0]) == 4  # last record lost pre-ack

    def test_appends_after_truncation_recover(self, tmp_path):
        """The truncated segment stays usable for new appends."""
        store = open_store(tmp_path)
        server = FakeServer()
        store.bind(server)
        write_puts(store, server, 3)
        store.close()
        seg = tmp_path / "store" / segments(tmp_path / "store")[-1]
        with open(seg, "ab") as fh:
            fh.write(b"XX")

        store2 = open_store(tmp_path)
        server2 = FakeServer()
        state = store2.recover_into(server2)
        assert state.truncated_bytes == 2
        write_puts(store2, server2, 2, start_lsn=state.lsn + 1)
        store2.close()

        server3 = FakeServer()
        final = open_store(tmp_path).recover_into(server3)
        assert final.truncated_bytes == 0
        assert len(server3.folders[folder()][0]) == 5


class TestSnapshotCrashes:
    def test_leftover_tmp_snapshot_ignored_and_deleted(self, tmp_path):
        store = open_store(tmp_path)
        server = FakeServer()
        store.bind(server)
        write_puts(store, server, 4)
        store.close()
        leftover = tmp_path / "store" / "snap-00000000000000000099.tmp"
        leftover.write_bytes(b"DSN1 partial snapshot write, crashed mid-way")

        recovered = FakeServer()
        state = open_store(tmp_path).recover_into(recovered)
        assert not leftover.exists()
        assert state.lsn == 4
        assert len(recovered.folders[folder()][0]) == 4

    def test_corrupt_newest_snapshot_falls_back_to_previous(self, tmp_path):
        store = open_store(tmp_path)
        server = FakeServer()
        store.bind(server)
        write_puts(store, server, 5)
        store.snapshot_now()
        write_puts(store, server, 5, start_lsn=6)
        store.snapshot_now()
        store.close()
        newest = (tmp_path / "store") / snapshots(tmp_path / "store")[-1]
        blob = bytearray(newest.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        newest.write_bytes(bytes(blob))

        recovered = FakeServer()
        state = open_store(tmp_path).recover_into(recovered)
        # Fallback snapshot plus the still-retained segments reconstruct
        # everything; the corrupt file is gone.
        assert len(recovered.folders[folder()][0]) == 10
        assert state.lsn == 10
        assert not newest.exists()

    def test_crash_between_snapshot_and_retention_no_double_apply(self, tmp_path):
        """Stale segments overlapping the snapshot replay idempotently."""
        store = open_store(tmp_path)
        server = FakeServer()
        store.bind(server)
        write_puts(store, server, 6)
        pre_roll = (tmp_path / "store") / segments(tmp_path / "store")[0]
        pre_roll_bytes = pre_roll.read_bytes()
        store.snapshot_now()  # rolls + retires the first segment
        store.close()
        # Resurrect the retired segment: the crash happened after the
        # snapshot published but before retention unlinked it.
        pre_roll.write_bytes(pre_roll_bytes)

        recovered = FakeServer()
        state = open_store(tmp_path).recover_into(recovered)
        assert len(recovered.folders[folder()][0]) == 6  # not 12
        assert state.lsn == 6

    def test_all_snapshots_corrupt_replays_segments(self, tmp_path):
        store = open_store(tmp_path)
        server = FakeServer()
        store.bind(server)
        write_puts(store, server, 4)
        store.snapshot_now()
        store.close()
        store_dir = tmp_path / "store"
        for name in snapshots(store_dir):
            (store_dir / name).write_bytes(b"DSN1 ruined")
        # Snapshot retention already removed the covered segment; put the
        # full history back (identical deterministic bytes) so recovery has
        # something to replay once it rejects every snapshot.
        redo = open_store(tmp_path.joinpath("redo"))
        redo_server = FakeServer()
        redo.bind(redo_server)
        write_puts(redo, redo_server, 4)
        redo.close()
        src = tmp_path / "redo" / "store"
        seg = segments(src)[0]
        (store_dir / seg).write_bytes((src / seg).read_bytes())

        recovered = FakeServer()
        state = open_store(tmp_path).recover_into(recovered)
        assert len(recovered.folders[folder()][0]) == 4
        assert state.lsn == 4


class TestManager:
    def test_store_ids_round_trip_through_quoting(self, tmp_path):
        cfg = DurabilityConfig(data_dir=str(tmp_path))
        mgr = DurabilityManager("host/a", cfg)
        store = mgr.store_for("replica:s0")
        store.bind(FakeServer())
        store.log_put(1, folder(), rec(b"x", 1))
        store.close()
        mgr2 = DurabilityManager("host/a", cfg)
        assert mgr2.on_disk_store_ids() == ["replica:s0"]
        assert mgr2.on_disk_replica_sids() == ["s0"]

    def test_gauges_aggregate_across_stores(self, tmp_path):
        cfg = DurabilityConfig(data_dir=str(tmp_path), fsync="always")
        mgr = DurabilityManager("h", cfg)
        for sid in ("s0", "s1"):
            store = mgr.store_for(sid)
            store.bind(FakeServer())
            store.log_put(1, folder(sid), rec(b"x", 1))
            store.commit()
        g = mgr.gauges()
        assert g["stores"] == 2
        assert g["wal_records"] == 2
        assert g["fsyncs"] == 2
        mgr.close()

    def test_same_store_object_returned(self, tmp_path):
        mgr = DurabilityManager("h", DurabilityConfig(data_dir=str(tmp_path)))
        assert mgr.store_for("s0") is mgr.store_for("s0")
        assert isinstance(mgr.store_for("s0"), DurableStore)
