"""DurableStore: WAL framing, fsync policy, snapshots, and recovery."""

import os

import pytest

from repro.core.keys import FolderName, Key, Symbol
from repro.core.memo import MemoRecord
from repro.durability.config import DurabilityConfig
from repro.durability.store import DurableStore
from repro.errors import MemoError


def folder(name="f", app="app"):
    return FolderName(app, Key(Symbol(name)))


def rec(payload, lsn, sid="s0", origin="t"):
    return MemoRecord(payload=payload, origin=origin, src_sid=sid, src_lsn=lsn)


class FakeServer:
    """Stands in for a FolderServer: holds the recovered dict, dumps it back."""

    def __init__(self):
        self.folders = {}
        self.lsn = 0

    def load_recovered(self, folders, lsn):
        self.folders = folders
        self.lsn = lsn

    def snapshot_state(self):
        return self.lsn, [
            (name, list(memos), list(delayed))
            for name, (memos, delayed) in self.folders.items()
        ]


def config(tmp_path, **kw):
    kw.setdefault("fsync", "batch")
    kw.setdefault("snapshot_every", 0)  # manual snapshots unless a test opts in
    return DurabilityConfig(data_dir=str(tmp_path), **kw)


def open_store(tmp_path, **kw):
    return DurableStore(tmp_path / "store", config(tmp_path, **kw))


def write_puts(store, server, n, name="f", start_lsn=1):
    """Journal *n* puts through the store, mirroring them in the fake server."""
    memos, _ = server.folders.setdefault(folder(name), ([], []))
    for i in range(n):
        lsn = start_lsn + i
        record = rec(b"m%d" % lsn, lsn)
        store.log_put(lsn, folder(name), record)
        memos.append(record)
        server.lsn = lsn
    store.commit()


class TestWalRoundTrip:
    def test_puts_recover_exactly(self, tmp_path):
        store = open_store(tmp_path)
        store.bind(FakeServer())
        for i in range(1, 8):
            store.log_put(i, folder(), rec(b"m%d" % i, i))
        store.commit()
        store.close()

        reopened = open_store(tmp_path)
        server = FakeServer()
        state = reopened.recover_into(server)
        assert state.lsn == 7
        assert state.replayed == 7
        assert state.truncated_bytes == 0
        memos, delayed = server.folders[folder()]
        assert [m.payload for m in memos] == [b"m%d" % i for i in range(1, 8)]
        assert [m.src_lsn for m in memos] == list(range(1, 8))
        assert delayed == []
        reopened.close()

    def test_consume_tombstones_replay(self, tmp_path):
        store = open_store(tmp_path)
        store.bind(FakeServer())
        records = [rec(b"m%d" % i, i) for i in range(1, 5)]
        for i, r in enumerate(records, start=1):
            store.log_put(i, folder(), r)
        store.log_consume(5, folder(), records[1])
        store.log_consume(6, folder(), records[3])
        store.commit()
        store.close()

        server = FakeServer()
        open_store(tmp_path).recover_into(server)
        memos, _ = server.folders[folder()]
        assert [m.payload for m in memos] == [b"m1", b"m3"]

    def test_delayed_records_and_clear(self, tmp_path):
        store = open_store(tmp_path)
        store.bind(FakeServer())
        store.log_delayed(1, folder("gate"), folder("out"), rec(b"d1", 1))
        store.log_delayed(2, folder("gate"), folder("out"), rec(b"d2", 2))
        store.log_put(3, folder("gate"), rec(b"trigger", 3))
        store.commit()
        store.close()

        server = FakeServer()
        open_store(tmp_path).recover_into(server)
        memos, delayed = server.folders[folder("gate")]
        assert [m.payload for m in memos] == [b"trigger"]
        assert [(m.payload, to) for m, to in delayed] == [
            (b"d1", folder("out")),
            (b"d2", folder("out")),
        ]

        # A delayed-clear (trigger release) empties the pending list.
        store2 = open_store(tmp_path)
        server2 = FakeServer()
        store2.recover_into(server2)
        store2.log_delayed_clear(4, folder("gate"))
        store2.commit()
        store2.close()
        server3 = FakeServer()
        open_store(tmp_path).recover_into(server3)
        assert server3.folders[folder("gate")][1] == []

    def test_folder_drop_removes_folder(self, tmp_path):
        store = open_store(tmp_path)
        store.bind(FakeServer())
        store.log_put(1, folder("a"), rec(b"x", 1))
        store.log_put(2, folder("b"), rec(b"y", 2))
        store.log_folder_drop(3, folder("a"))
        store.commit()
        store.close()

        server = FakeServer()
        open_store(tmp_path).recover_into(server)
        assert folder("a") not in server.folders
        assert [m.payload for m in server.folders[folder("b")][0]] == [b"y"]

    def test_empty_store_recovers_empty(self, tmp_path):
        server = FakeServer()
        state = open_store(tmp_path).recover_into(server)
        assert state.lsn == 0 and state.replayed == 0
        assert server.folders == {}


class TestFsyncPolicy:
    def test_always_fsyncs_every_commit(self, tmp_path):
        store = open_store(tmp_path, fsync="always")
        store.bind(FakeServer())
        for i in range(1, 4):
            store.log_put(i, folder(), rec(b"m", i))
            store.commit()
        assert store.fsyncs == 3
        store.close()

    def test_none_fsyncs_only_at_close(self, tmp_path):
        store = open_store(tmp_path, fsync="none")
        store.bind(FakeServer())
        for i in range(1, 4):
            store.log_put(i, folder(), rec(b"m", i))
            store.commit()
        assert store.fsyncs == 0
        store.close()

    def test_batch_fsyncs_at_record_threshold(self, tmp_path):
        store = open_store(tmp_path, fsync="batch", batch_records=2, batch_seconds=60.0)
        store.bind(FakeServer())
        store.log_put(1, folder(), rec(b"m", 1))
        store.commit()
        assert store.fsyncs == 0
        store.log_put(2, folder(), rec(b"m", 2))
        store.commit()
        assert store.fsyncs == 1
        store.close()

    def test_bad_config_rejected(self, tmp_path):
        with pytest.raises(MemoError):
            DurabilityConfig(data_dir=str(tmp_path), fsync="sometimes")
        with pytest.raises(MemoError):
            DurabilityConfig(data_dir="")

    def test_append_after_close_is_noop(self, tmp_path):
        store = open_store(tmp_path)
        store.bind(FakeServer())
        store.log_put(1, folder(), rec(b"m", 1))
        store.commit()
        store.close()
        store.log_put(2, folder(), rec(b"late", 2))  # silently dropped
        store.commit()
        server = FakeServer()
        open_store(tmp_path).recover_into(server)
        assert [m.payload for m in server.folders[folder()][0]] == [b"m"]


class TestSnapshots:
    def test_snapshot_rolls_segment_and_retires(self, tmp_path):
        store = open_store(tmp_path)
        server = FakeServer()
        store.bind(server)
        write_puts(store, server, 10)
        store.snapshot_now()
        write_puts(store, server, 10, start_lsn=11)
        store.snapshot_now()
        store.close()

        names = sorted(os.listdir(tmp_path / "store"))
        snaps = [n for n in names if n.startswith("snap-")]
        segs = [n for n in names if n.startswith("wal-")]
        assert len(snaps) == 2
        # The pre-first-snapshot segment is covered by the older retained
        # snapshot and must have been retired.
        assert "wal-00000000000000000001.log" not in segs

        recovered = FakeServer()
        state = open_store(tmp_path).recover_into(recovered)
        assert state.lsn == 20
        assert len(recovered.folders[folder()][0]) == 20

    def test_automatic_snapshot_trigger(self, tmp_path):
        store = open_store(tmp_path, snapshot_every=4)
        server = FakeServer()
        store.bind(server)
        write_puts(store, server, 9)  # commits once; 9 >= 4 -> snapshot fires
        assert store.snapshots_written >= 1
        store.close()

    def test_snapshot_keeps_newest_two(self, tmp_path):
        store = open_store(tmp_path)
        server = FakeServer()
        store.bind(server)
        for round_no in range(4):
            write_puts(store, server, 3, start_lsn=1 + 3 * round_no)
            store.snapshot_now()
        store.close()
        snaps = [
            n for n in os.listdir(tmp_path / "store") if n.startswith("snap-")
        ]
        assert len(snaps) == 2
