"""Unit tests for every locking derivation against the common contract."""

import threading
import time

import pytest

from repro.errors import LockingError, LockTimeoutError, NotOwnerError
from repro.locking import (
    CountingSemaphore,
    FileLock,
    MutexLock,
    ReaderWriterLock,
    RLockLock,
    SpinLock,
    available_lock_kinds,
    lock_factory,
)

CONTRACT_LOCKS = [MutexLock, SpinLock, FileLock, RLockLock]


@pytest.mark.parametrize("lock_cls", CONTRACT_LOCKS)
class TestContract:
    """The section-3.1.4 contract, run against every derivation."""

    def test_acquire_release(self, lock_cls):
        lock = lock_cls()
        assert lock.acquire() is True
        lock.release()

    def test_trylock_fails_when_held(self, lock_cls):
        lock = lock_cls()
        lock.acquire()
        holder_result = []

        def other():
            holder_result.append(lock.acquire(timeout=0))

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert holder_result == [False]
        lock.release()

    def test_timeout_raises(self, lock_cls):
        lock = lock_cls()
        lock.acquire()
        failures = []

        def other():
            try:
                lock.acquire(timeout=0.05)
            except LockTimeoutError:
                failures.append(True)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert failures == [True]
        lock.release()

    def test_context_manager(self, lock_cls):
        lock = lock_cls()
        with lock:
            assert lock.acquire(timeout=0) is False or lock_cls is RLockLock
            if lock_cls is RLockLock:
                lock.release()  # undo the reentrant acquire

    def test_mutual_exclusion_under_contention(self, lock_cls):
        lock = lock_cls()
        counter = {"n": 0}

        def work():
            for _ in range(200):
                lock.acquire()
                v = counter["n"]
                counter["n"] = v + 1
                lock.release()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["n"] == 800


class TestOwnership:
    @pytest.mark.parametrize("lock_cls", [MutexLock, SpinLock, FileLock])
    def test_release_by_non_owner_rejected(self, lock_cls):
        lock = lock_cls()
        lock.acquire()
        errors = []

        def intruder():
            try:
                lock.release()
            except NotOwnerError:
                errors.append(True)

        t = threading.Thread(target=intruder)
        t.start()
        t.join()
        assert errors == [True]
        lock.release()

    def test_rlock_is_reentrant(self):
        lock = RLockLock()
        lock.acquire()
        assert lock.acquire(timeout=0) is True
        lock.release()
        lock.release()

    def test_rlock_release_unheld(self):
        with pytest.raises(NotOwnerError):
            RLockLock().release()


class TestSemaphore:
    def test_permits(self):
        sem = CountingSemaphore(2)
        assert sem.acquire(timeout=0)
        assert sem.acquire(timeout=0)
        assert not sem.acquire(timeout=0)
        sem.release()
        assert sem.acquire(timeout=0)
        sem.release()
        sem.release()
        assert sem.value == 2

    def test_negative_initial_rejected(self):
        with pytest.raises(LockingError):
            CountingSemaphore(-1)

    def test_ceiling_enforced(self):
        sem = CountingSemaphore(1, max_value=1)
        with pytest.raises(LockingError):
            sem.release()

    def test_blocking_handoff(self):
        sem = CountingSemaphore(0)
        got = []

        def waiter():
            sem.acquire()
            got.append(True)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.02)
        assert got == []
        sem.release()
        t.join(timeout=2)
        assert got == [True]


class TestReaderWriter:
    def test_concurrent_readers(self):
        rw = ReaderWriterLock()
        assert rw.acquire_read() and rw.acquire_read()
        rw.release_read()
        rw.release_read()

    def test_writer_excludes_readers(self):
        rw = ReaderWriterLock()
        rw.acquire_write()
        assert rw.acquire_read(timeout=0.02) is False
        rw.release_write()
        assert rw.acquire_read()
        rw.release_read()

    def test_writer_waits_for_readers(self):
        rw = ReaderWriterLock()
        rw.acquire_read()
        assert rw.acquire_write(timeout=0.02) is False
        rw.release_read()
        assert rw.acquire_write()
        rw.release_write()

    def test_writer_preference_blocks_new_readers(self):
        rw = ReaderWriterLock()
        rw.acquire_read()
        state = {}

        def writer():
            state["w"] = rw.acquire_write(timeout=2)
            rw.release_write()

        t = threading.Thread(target=writer)
        t.start()
        time.sleep(0.05)  # writer is now queued
        assert rw.acquire_read(timeout=0.02) is False  # reader must wait
        rw.release_read()
        t.join()
        assert state["w"] is True

    def test_unbalanced_release_rejected(self):
        rw = ReaderWriterLock()
        with pytest.raises(LockingError):
            rw.release_read()
        with pytest.raises(LockingError):
            rw.release_write()

    def test_lockbase_views(self):
        rw = ReaderWriterLock()
        with rw.reader:
            pass
        with rw.writer:
            pass


class TestFactory:
    def test_known_kinds_registered(self):
        kinds = available_lock_kinds()
        for kind in ("mutex", "spin", "file", "semaphore", "rlock"):
            assert kind in kinds

    def test_factory_dispatch(self):
        lock = lock_factory("spin")
        assert isinstance(lock, SpinLock)

    def test_unknown_kind_rejected(self):
        with pytest.raises(LockingError):
            lock_factory("quantum")
