"""Observability and pause/resume under host death (harness satellites).

``Cluster.debug_report`` and ``waiter_gauges`` are what the invariant
checker polls *while hosts are dying* — they must degrade to tagged
partial results, never raise.  ``pause_host``/``resume_host`` are the
gray-failure primitive the scheduler uses where no fabric exists.
"""

from __future__ import annotations

import pytest

from repro.adf.defaults import system_default_adf
from repro.core.keys import Key, Symbol
from repro.errors import RuntimeLaunchError
from repro.runtime.cluster import Cluster

APP = "obs"


def make_cluster(backend: str, **kwargs) -> Cluster:
    adf = system_default_adf(["a", "b"], app=APP)
    cluster = Cluster(
        adf, backend=backend, idle_timeout=0.5,
        heartbeat_interval=0.05, failure_threshold=2, **kwargs
    ).start()
    cluster.register()
    return cluster


def test_gauges_tag_dead_host_instead_of_raising_process_mode():
    cluster = make_cluster("process")
    try:
        cluster.kill_host("b")
        gauges = cluster.waiter_gauges()  # must not raise mid-kill
        assert gauges["b"] == {"down": True}
        assert "active" in gauges["a"]

        report = cluster.debug_report()  # must not raise either
        assert "b: down" in report
        assert "a: requests=" in report

        cluster.restart_host("b")
        gauges = cluster.waiter_gauges()
        assert "down" not in gauges["b"]
        assert "active" in gauges["b"]
    finally:
        cluster.stop()


def test_pause_resume_inprocess_cuts_and_heals_links():
    cluster = make_cluster("inprocess")
    try:
        fabric = cluster.fabric
        assert not fabric.is_partitioned("a", "b")
        cluster.pause_host("b")
        assert fabric.is_partitioned("a", "b")
        # The anchor host keeps serving its own folders throughout.
        with cluster.memo_api("a", APP, "probe") as memo:
            key = Key(Symbol("obs.local"))
            memo.put(key, "v", wait=True)
            assert memo.get_skip(key) == "v"
        cluster.resume_host("b")
        assert not fabric.is_partitioned("a", "b")
        cluster.resume_host("b")  # idempotent
    finally:
        cluster.stop()


def test_pause_requires_fabric_on_tcp_inprocess():
    cluster = make_cluster("inprocess", transport_kind="tcp")
    try:
        with pytest.raises(RuntimeLaunchError, match="fabric"):
            cluster.pause_host("b")
    finally:
        cluster.stop()


def test_pause_resume_process_mode_sigstop_roundtrip():
    cluster = make_cluster("process")
    try:
        cluster.pause_host("b")
        # The frozen child accepts no work; a is unaffected.  Resume must
        # bring b back with all its state intact (no restart, no WAL replay).
        cluster.resume_host("b")
        with cluster.memo_api("b", APP, "probe") as memo:
            key = Key(Symbol("obs.thaw"))
            memo.put(key, 1, wait=True)
            assert memo.get_skip(key) == 1
    finally:
        cluster.stop()


def test_stop_reaps_a_paused_child():
    """SIGTERM never lands on a SIGSTOPped process; stop() must resume
    frozen children first or the reap would hang until the SIGKILL pass."""
    cluster = make_cluster("process")
    cluster.pause_host("b")
    cluster.stop()  # must return promptly, no zombies
    assert not cluster.backend.is_live("a")
    assert not cluster.backend.is_live("b")
