"""Scenario specs: seeded determinism, serialization, validation."""

from __future__ import annotations

import threading

import pytest

from repro.errors import MemoError
from repro.scenarios import FaultEvent, ScenarioSpec, WorkloadSpec
from repro.scenarios.workloads import build_workloads


def chaos_spec(seed: int = 99) -> ScenarioSpec:
    return ScenarioSpec(
        name="det",
        seed=seed,
        hosts=5,
        duration=10.0,
        fault_plan={"kills": 2, "partitions": 2, "pauses": 1, "spikes": 2},
        workloads=[
            WorkloadSpec(kind="uniform", workers=2, ops=50),
            WorkloadSpec(kind="pipeline", workers=2, ops=20),
            WorkloadSpec(kind="scatter_gather", workers=1, ops=10),
            WorkloadSpec(kind="actors", workers=1, ops=10),
        ],
    )


class _StubCtx:
    """Just enough context to *construct* workloads (no cluster)."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.hosts = spec.host_names()
        self.ledger = None
        self.stop = threading.Event()
        self.cluster = None

    def host_at(self, index: int) -> str:
        return self.hosts[index % len(self.hosts)]


class TestScheduleDeterminism:
    def test_same_seed_same_schedule_bytes(self):
        assert chaos_spec(99).schedule_json() == chaos_spec(99).schedule_json()

    def test_schedule_stable_across_calls(self):
        spec = chaos_spec()
        assert spec.schedule_json() == spec.schedule_json()

    def test_different_seed_different_schedule(self):
        assert chaos_spec(1).schedule_json() != chaos_spec(2).schedule_json()

    def test_json_roundtrip_preserves_schedule(self):
        spec = chaos_spec()
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone.to_dict() == spec.to_dict()
        assert clone.schedule_json() == spec.schedule_json()

    def test_explicit_faults_roundtrip(self):
        spec = ScenarioSpec(
            name="explicit",
            seed=0,
            hosts=3,
            workloads=[WorkloadSpec(kind="uniform")],
            faults=[
                FaultEvent(at=0.5, kind="kill", targets=("n01",), duration=1.0),
                FaultEvent(at=0.2, kind="spike", targets=("n01", "n02"),
                           duration=0.5, seconds=0.1),
            ],
        )
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone.schedule_json() == spec.schedule_json()
        # Schedules come out time-sorted regardless of declaration order.
        assert [e.kind for e in clone.fault_schedule()] == ["spike", "kill"]

    def test_generator_spares_the_anchor_host(self):
        spec = chaos_spec()
        anchor = spec.host_names()[0]
        for event in spec.fault_schedule():
            assert anchor not in event.targets

    def test_planned_token_streams_deterministic(self):
        streams = []
        for _ in range(2):
            workloads = build_workloads(_StubCtx(chaos_spec()))
            streams.append([w.planned_tokens() for w in workloads])
        assert streams[0] == streams[1]
        assert any(tokens for tokens in streams[0])


class TestValidation:
    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(MemoError, match="unknown fault kind"):
            FaultEvent(at=0.0, kind="meteor", targets=("n00",))

    def test_no_workloads_rejected(self):
        with pytest.raises(MemoError, match="drives no workloads"):
            ScenarioSpec(name="idle", seed=0).validate()

    def test_kills_require_replication(self):
        spec = ScenarioSpec(
            name="fragile",
            seed=0,
            replication_factor=1,
            workloads=[WorkloadSpec(kind="uniform")],
            faults=[FaultEvent(at=0.1, kind="kill", targets=("n00",))],
        )
        with pytest.raises(MemoError, match="replication_factor >= 2"):
            spec.validate()

    def test_spikes_require_inprocess_backend(self):
        spec = ScenarioSpec(
            name="spiky",
            seed=0,
            backend="process",
            workloads=[WorkloadSpec(kind="uniform")],
            faults=[
                FaultEvent(at=0.1, kind="spike", targets=("n00", "n01"),
                           seconds=0.1)
            ],
        )
        with pytest.raises(MemoError, match="in-memory fabric"):
            spec.validate()

    def test_unknown_fault_target_rejected(self):
        spec = ScenarioSpec(
            name="ghost",
            seed=0,
            hosts=2,
            workloads=[WorkloadSpec(kind="uniform")],
            faults=[FaultEvent(at=0.1, kind="kill", targets=("nope",))],
        )
        with pytest.raises(MemoError, match="unknown hosts"):
            spec.validate()

    def test_open_pacing_needs_rate(self):
        with pytest.raises(MemoError, match="positive rate"):
            WorkloadSpec(kind="uniform", pacing="open")

    def test_unknown_workload_kind_fails_at_build(self):
        spec = ScenarioSpec(
            name="odd", seed=0, workloads=[WorkloadSpec(kind="nonesuch")]
        )
        with pytest.raises(MemoError, match="unknown workload kind"):
            build_workloads(_StubCtx(spec))
