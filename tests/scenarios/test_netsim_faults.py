"""Seeded, composable netsim fault injectors (satellite of the harness).

The injectors must (a) draw all randomness from an explicit caller
``random.Random`` so a fault sequence replays byte-identically, and
(b) compose — a spike inside a partition, a partition entered while the
link is already cut — with each injector restoring exactly the state it
changed, LIFO.
"""

from __future__ import annotations

import random

from repro.network.transport import NetworkFabric
from repro.sim.netsim import latency_spike, partitioned, random_link_fault


def test_spike_jitter_is_seed_deterministic():
    magnitudes = []
    for _ in range(2):
        fabric = NetworkFabric()
        rng = random.Random(42)
        run = []
        for _ in range(5):
            with latency_spike(fabric, "a", "b", 0.1, rng=rng, jitter=0.05) as s:
                run.append(s)
        magnitudes.append(run)
    assert magnitudes[0] == magnitudes[1]
    assert all(0.1 <= s <= 0.15 for s in magnitudes[0])
    assert len(set(magnitudes[0])) > 1  # jitter actually applied


def test_spike_restores_previous_latency():
    fabric = NetworkFabric()
    fabric.set_latency("a", "b", 0.02)
    with latency_spike(fabric, "a", "b", 0.5):
        assert fabric.latency("a", "b") == 0.5
    assert fabric.latency("a", "b") == 0.02


def test_spike_inside_partition_composes():
    fabric = NetworkFabric()
    with partitioned(fabric, "a", "b"):
        with latency_spike(fabric, "a", "b", 0.3):
            assert fabric.is_partitioned("a", "b")
            assert fabric.latency("a", "b") == 0.3
        # Spike exit restores latency without healing the cut.
        assert fabric.is_partitioned("a", "b")
        assert fabric.latency("a", "b") == 0.0
    assert not fabric.is_partitioned("a", "b")


def test_nested_partition_leaves_outer_cut():
    fabric = NetworkFabric()
    with partitioned(fabric, "a", "b"):
        with partitioned(fabric, "a", "b"):
            assert fabric.is_partitioned("a", "b")
        # Inner exit must not heal the outer window's cut.
        assert fabric.is_partitioned("a", "b")
    assert not fabric.is_partitioned("a", "b")


def test_random_link_fault_replays_from_seed():
    descriptions = []
    for _ in range(2):
        fabric = NetworkFabric()
        rng = random.Random(7)
        drawn = []
        for _ in range(8):
            with random_link_fault(fabric, "a", "b", rng) as described:
                drawn.append(dict(described))
        descriptions.append(drawn)
    assert descriptions[0] == descriptions[1]
    kinds = {d["kind"] for d in descriptions[0]}
    assert len(kinds) > 1  # the draw actually varies


def test_random_link_fault_applies_and_restores():
    fabric = NetworkFabric()
    rng = random.Random(3)
    for _ in range(8):
        with random_link_fault(fabric, "a", "b", rng) as described:
            if described["kind"] in ("partition", "spike_in_partition"):
                assert fabric.is_partitioned("a", "b")
            if described["kind"] in ("spike", "spike_in_partition"):
                assert fabric.latency("a", "b") == described["seconds"]
                assert 0.05 <= described["seconds"] <= 0.25
        assert not fabric.is_partitioned("a", "b")
        assert fabric.latency("a", "b") == 0.0
