"""End-to-end scenario runs: the three invariants under real chaos.

The headline satellite: one multi-host kill + partition scenario,
parameterized over BOTH cluster backends — thread-pool servers over the
memory fabric, and one-OS-process-per-host over TCP where the kill is a
genuine SIGKILL and the partition maps onto a SIGSTOP freeze.  Either
way the run must come out the other side with *no lost acked puts*, *no
stranded waiters*, and *bounded duplicates*.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    FaultEvent,
    ScenarioSpec,
    WorkloadSpec,
    run_scenario,
)

BACKENDS = ["inprocess", "process"]

#: Per-backend op budgets: the in-process fabric is an order of magnitude
#: faster, and the faults must land while traffic is still flowing.
_OPS = {"inprocess": (500, 120), "process": (140, 40)}


@pytest.mark.parametrize("backend", BACKENDS)
def test_kill_plus_partition_invariants(backend):
    uniform_ops, pipeline_ops = _OPS[backend]
    spec = ScenarioSpec(
        name=f"kp-{backend}",
        seed=1234,
        hosts=3,
        replication_factor=2,
        duration=60.0,
        backend=backend,
        faults=[
            FaultEvent(at=0.4, kind="kill", targets=("n02",), duration=1.5),
            FaultEvent(at=0.9, kind="partition", targets=("n01", "n02"),
                       duration=1.0),
        ],
        workloads=[
            WorkloadSpec(kind="uniform", workers=2, ops=uniform_ops),
            WorkloadSpec(kind="pipeline", workers=1, ops=pipeline_ops,
                         options={"stages": 3}),
        ],
    )
    result = run_scenario(spec)
    # The kill genuinely opened while load was flowing.
    opened = [r for r in result.executed_faults if r["phase"] == "open"]
    assert any(r["kind"] == "kill" for r in opened), result.executed_faults
    # All three invariants (and per-workload verification) hold.
    result.assert_ok()
    assert result.metrics["acked_puts"] > 0
    assert not result.report.lost_acked
    assert not result.report.stranded_waiters
    assert not result.report.unexplained_duplicates


def test_calm_run_is_exactly_once():
    """Without faults the duplicate bound degenerates to exactly-once."""
    spec = ScenarioSpec(
        name="calm",
        seed=5,
        hosts=3,
        replication_factor=1,
        duration=30.0,
        max_duplicates=0,
        workloads=[
            WorkloadSpec(kind="uniform", workers=2, ops=60),
            WorkloadSpec(kind="pipeline", workers=1, ops=20),
        ],
    )
    result = run_scenario(spec)
    result.assert_ok()
    assert result.report.duplicates == {}
    assert result.metrics["fault_epochs"] == 0
    # Everything acked was seen again: consumed in-flight or drained.
    counts = result.metrics
    assert counts["consumes"] + counts["drained"] >= counts["acked_puts"]


def test_fanin_actors_and_lucid_survive_a_kill():
    """Waiter-table fan-in, MDC mailboxes, and Lucid dataflow under a kill."""
    spec = ScenarioSpec(
        name="mixed",
        seed=21,
        hosts=4,
        replication_factor=2,
        duration=60.0,
        faults=[
            FaultEvent(at=0.6, kind="kill", targets=("n03",), duration=1.2),
        ],
        workloads=[
            WorkloadSpec(kind="scatter_gather", workers=1, ops=25,
                         options={"fanout": 3}),
            WorkloadSpec(kind="actors", workers=1, ops=20,
                         options={"actors": 3, "hops": 6}),
            WorkloadSpec(kind="lucid", workers=1, ops=1, options={"n": 6}),
        ],
    )
    result = run_scenario(spec)
    result.assert_ok()
    notes = result.workload_notes
    assert notes["lucid[2]"]["converged"] is True
    assert notes["actors[1]"]["rings_completed"] > 0
    assert notes["scatter_gather[0]"]["rounds"] == [25]


def test_open_loop_pacing_runs_at_rate():
    """Open-loop driving issues on the clock and still reconciles."""
    spec = ScenarioSpec(
        name="open",
        seed=9,
        hosts=2,
        replication_factor=1,
        duration=30.0,
        workloads=[
            WorkloadSpec(kind="uniform", workers=1, ops=80, pacing="open",
                         rate=400.0),
        ],
    )
    result = run_scenario(spec)
    result.assert_ok()
    assert result.metrics["acked_puts"] > 0


def test_seeded_fault_plan_executes_deterministically():
    """A generated (plan-based) schedule executes the events it promised."""
    spec = ScenarioSpec(
        name="gen",
        seed=77,
        hosts=3,
        replication_factor=2,
        duration=60.0,
        fault_plan={"kills": 1, "kill_hold": 0.8, "window": [0.003, 0.008]},
        workloads=[WorkloadSpec(kind="uniform", workers=2, ops=1500)],
    )
    promised = spec.fault_schedule()
    assert [e.kind for e in promised] == ["kill"]
    result = run_scenario(spec)
    result.assert_ok()
    executed_kills = [
        r for r in result.executed_faults
        if r["kind"] == "kill" and r["phase"] == "open"
    ]
    assert [tuple(r["targets"]) for r in executed_kills] == [
        promised[0].targets
    ]
