"""Property-based tests on system invariants: placement, routing, folders."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.keys import FolderName, Key, Symbol
from repro.core.memo import MemoRecord
from repro.network.routing import RoutingTable
from repro.servers.folder_server import FolderServer
from repro.servers.hashing import FolderPlacement, weighted_rendezvous

# -- strategies -------------------------------------------------------------------

host_names = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    min_size=2,
    max_size=6,
    unique=True,
)

keys = st.builds(
    Key,
    st.builds(Symbol, st.text(alphabet="xyz", min_size=1, max_size=3)),
    st.lists(st.integers(0, 1000), max_size=3).map(tuple),
)


@given(
    st.binary(min_size=1, max_size=40),
    st.dictionaries(
        st.text(alphabet="ab012", min_size=1, max_size=3),
        st.floats(0.1, 10.0),
        min_size=1,
        max_size=8,
    ),
)
def test_rendezvous_total_and_deterministic(key_bytes, weights):
    """The hash always picks a member, and always the same one."""
    winner = weighted_rendezvous(key_bytes, weights)
    assert winner in weights
    assert weighted_rendezvous(key_bytes, weights) == winner


@given(
    st.binary(min_size=1, max_size=40),
    st.dictionaries(
        st.text(alphabet="ab01", min_size=1, max_size=3),
        st.floats(0.1, 10.0),
        min_size=2,
        max_size=8,
    ),
)
def test_rendezvous_monotone_under_removal(key_bytes, weights):
    """Removing a losing server never changes the winner (HRW property)."""
    winner = weighted_rendezvous(key_bytes, weights)
    losers = [sid for sid in weights if sid != winner]
    if losers:
        smaller = dict(weights)
        del smaller[losers[0]]
        assert weighted_rendezvous(key_bytes, smaller) == winner


@given(hosts=host_names, key=keys, data=st.data())
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_placement_agreement_across_instances(hosts, key, data):
    """Any two placement instances with the same ADF data agree (the
    exclusive-ownership precondition of section 4.1)."""
    servers = [(str(i), h) for i, h in enumerate(hosts)]
    power = {h: data.draw(st.floats(0.5, 8.0)) for h in hosts}
    links = {h: {o: 1.0 for o in hosts if o != h} for h in hosts}
    routing = RoutingTable(links)
    folder = FolderName("app", key)
    p1 = FolderPlacement(servers, power, routing)
    p2 = FolderPlacement(list(servers), dict(power), RoutingTable(links))
    assert p1.place(folder) == p2.place(folder)


@given(
    st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=25),
    st.floats(0.1, 5.0),
)
def test_routing_triangle_inequality(edges, scale):
    """Shortest-path costs satisfy the triangle inequality."""
    links: dict[str, dict[str, float]] = {}
    for a, b in edges:
        if a == b:
            continue
        links.setdefault(str(a), {})[str(b)] = scale
        links.setdefault(str(b), {})[str(a)] = scale
    if not links:
        return
    table = RoutingTable(links)
    hosts = table.hosts
    for x in hosts:
        for y in hosts:
            for z in hosts:
                if (
                    table.reachable(x, y)
                    and table.reachable(y, z)
                    and table.reachable(x, z)
                ):
                    assert (
                        table.cost(x, z)
                        <= table.cost(x, y) + table.cost(y, z) + 1e-9
                    )


@given(st.lists(st.integers(), min_size=1, max_size=30))
@settings(deadline=None)
def test_folder_is_a_multiset(values):
    """Whatever goes into a folder comes out: same multiset, no order."""
    fs = FolderServer("0")
    name = FolderName("app", Key(Symbol("q")))
    for v in values:
        fs.put(name, MemoRecord.from_value(v))
    out = [fs.get(name).value() for _ in values]
    assert sorted(out) == sorted(values)
    fs.shutdown()


@given(st.lists(st.integers(), min_size=1, max_size=15), st.integers(0, 14))
@settings(deadline=None)
def test_get_copy_never_consumes(values, copies):
    fs = FolderServer("0")
    name = FolderName("app", Key(Symbol("q")))
    for v in values:
        fs.put(name, MemoRecord.from_value(v))
    for _ in range(copies):
        fs.get_copy(name)
    assert fs.memo_count() == len(values)
    fs.shutdown()


@given(st.lists(st.tuples(st.integers(0, 3), st.integers()), max_size=30))
@settings(deadline=None)
def test_folders_never_leak_between_keys(ops):
    """Memos deposited under one key are never visible under another."""
    fs = FolderServer("0")
    deposited: dict[int, list[int]] = {i: [] for i in range(4)}
    for slot, v in ops:
        fs.put(FolderName("app", Key(Symbol("s"), (slot,))), MemoRecord.from_value(v))
        deposited[slot].append(v)
    for slot, expect in deposited.items():
        name = FolderName("app", Key(Symbol("s"), (slot,)))
        got = []
        while True:
            rec = fs.get_skip(name)
            if rec is None:
                break
            got.append(rec.value())
        assert sorted(got) == sorted(expect)
    fs.shutdown()
