"""Property tests: random traffic over the channel transport.

Random interleavings of sends across several virtual connections over one
shared link must deliver every message exactly once, in per-VC order, with
contents intact — whatever the fragment size.
"""

import threading

from hypothesis import given, settings, strategies as st

from repro.network.channel import ChannelLink, ChannelTransport
from repro.network.connection import Address

# (vc index, payload) send schedules.
schedules = st.lists(
    st.tuples(st.integers(0, 2), st.binary(min_size=0, max_size=2000)),
    min_size=1,
    max_size=20,
)


@given(schedule=schedules, fragment=st.sampled_from([16, 64, 1024, 65536]))
@settings(max_examples=40, deadline=None)
def test_random_traffic_exact_delivery(schedule, fragment):
    link_a, link_b = ChannelLink.create_pair()
    ta = ChannelTransport(link_a, "A", "B", fragment_size=fragment)
    tb = ChannelTransport(link_b, "B", "A", fragment_size=fragment)
    try:
        listeners = [tb.listen(Address("B", port)) for port in range(3)]
        clients = [ta.connect(Address("B", port)) for port in range(3)]
        servers = [listener.accept(timeout=5) for listener in listeners]

        expected: dict[int, list[bytes]] = {0: [], 1: [], 2: []}
        for vc, payload in schedule:
            clients[vc].send(payload)
            expected[vc].append(payload)

        received: dict[int, list[bytes]] = {0: [], 1: [], 2: []}

        def drain(vc: int) -> None:
            for _ in expected[vc]:
                received[vc].append(servers[vc].recv(timeout=10))

        threads = [threading.Thread(target=drain, args=(vc,)) for vc in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15)

        # Exactly-once, per-VC FIFO, bytes intact.
        assert received == expected
    finally:
        ta.close()
        tb.close()


@given(payload=st.binary(min_size=0, max_size=50_000))
@settings(max_examples=30, deadline=None)
def test_any_payload_roundtrips(payload):
    link_a, link_b = ChannelLink.create_pair()
    ta = ChannelTransport(link_a, "A", "B", fragment_size=777)  # odd size
    tb = ChannelTransport(link_b, "B", "A", fragment_size=777)
    try:
        listener = tb.listen(Address("B", 1))
        client = ta.connect(Address("B", 1))
        server = listener.accept(timeout=5)
        client.send(payload)
        assert server.recv(timeout=10) == payload
    finally:
        ta.close()
        tb.close()
