"""Property tests: ADF write → parse is the identity."""

from hypothesis import given, settings, strategies as st

from repro.adf.model import ADF, FolderDecl, HostDecl, LinkDecl, ProcessDecl
from repro.adf.parser import parse_adf
from repro.adf.writer import write_adf

# Host/program names: the text format splits on whitespace and strips '#'
# comments, so names exclude both.
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-_",
    min_size=1,
    max_size=12,
).filter(lambda s: not s.startswith("-") and "--" not in s)

costs = st.one_of(
    st.integers(1, 1000).map(float),
    st.floats(0.001, 1000.0, allow_nan=False).map(lambda x: float(repr(x))),
)


@st.composite
def adfs(draw) -> ADF:
    host_names = draw(st.lists(names, min_size=1, max_size=5, unique=True))
    adf = ADF(app=draw(names))
    adf.hosts = [
        HostDecl(
            name,
            draw(st.integers(1, 256)),
            draw(names),
            draw(costs),
        )
        for name in host_names
    ]
    n_folders = draw(st.integers(1, 6))
    adf.folders = [
        FolderDecl(str(i), draw(st.sampled_from(host_names)))
        for i in range(n_folders)
    ]
    n_procs = draw(st.integers(0, 6))
    adf.processes = [
        ProcessDecl(str(i), draw(names), draw(st.sampled_from(host_names)))
        for i in range(n_procs)
    ]
    if len(host_names) > 1:
        n_links = draw(st.integers(0, 6))
        for _ in range(n_links):
            pair = draw(st.lists(st.sampled_from(host_names), min_size=2, max_size=2, unique=True))
            adf.links.append(
                LinkDecl(pair[0], pair[1], draw(costs), draw(st.booleans()))
            )
    return adf


@given(adfs())
@settings(max_examples=150, deadline=None)
def test_write_parse_roundtrip(adf):
    """parse(write(adf)) reproduces every section exactly."""
    parsed = parse_adf(write_adf(adf))
    assert parsed.app == adf.app
    assert parsed.hosts == adf.hosts
    assert parsed.folders == adf.folders
    assert parsed.processes == adf.processes
    assert parsed.links == adf.links


@given(adfs())
@settings(max_examples=50, deadline=None)
def test_write_is_stable(adf):
    """Writing a parsed ADF reproduces the same text (canonical form)."""
    once = write_adf(adf)
    again = write_adf(parse_adf(once))
    assert once == again


def test_paper_example_roundtrip():
    """The section-4.3 example survives parse → write → parse."""
    from tests.adf.test_parser import PAPER_ADF

    first = parse_adf(PAPER_ADF)
    second = parse_adf(write_adf(first))
    assert second.app == first.app
    assert second.hosts == first.hosts
    assert second.folders == first.folders
    assert second.processes == first.processes
    assert second.links == first.links


def test_written_file_launches(tmp_path):
    """A programmatically written ADF drives the real launcher."""
    from repro import ProgramRegistry, run_application, system_default_adf
    from repro.adf.parser import parse_adf_file
    from repro.adf.writer import write_adf_file

    adf = system_default_adf(["m1", "m2"], app="written")
    path = tmp_path / "written.adf"
    write_adf_file(adf, str(path))
    loaded = parse_adf_file(str(path))
    loaded.validate()

    registry = ProgramRegistry()

    @registry.register("boss")
    def boss(memo, ctx):
        return "ran"

    @registry.register("worker")
    def worker(memo, ctx):
        return ctx.host

    results = run_application(loaded, registry, timeout=60)
    assert results["0"] == "ran"
    assert {results["1"], results["2"]} == {"m1", "m2"}
