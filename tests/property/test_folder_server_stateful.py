"""Stateful property test: the folder server against a multiset model.

Hypothesis drives random sequences of put / get_skip / get_copy /
put_delayed / get_alt_skip operations against a live FolderServer and a
trivial reference model (dict of multisets + delayed parking lots).  Any
divergence — lost memo, phantom memo, wrong delayed-release semantics,
broken vanish bookkeeping — fails with a minimized counterexample.
"""

from collections import Counter

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.keys import FolderName, Key, Symbol
from repro.core.memo import MemoRecord
from repro.servers.folder_server import FolderServer

FOLDER_IDS = list(range(4))


def fname(i: int) -> FolderName:
    return FolderName("app", Key(Symbol("f"), (i,)))


class FolderServerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.fs = FolderServer("0")
        # model: folder id -> Counter of values
        self.model: dict[int, Counter] = {i: Counter() for i in FOLDER_IDS}
        # model of delayed parking: folder id -> list[(value, dest id)]
        self.delayed: dict[int, list[tuple[int, int]]] = {
            i: [] for i in FOLDER_IDS
        }

    def teardown(self) -> None:
        if hasattr(self, "fs"):
            self.fs.shutdown()

    # -- operations --------------------------------------------------------

    def _model_arrival(self, folder: int) -> None:
        """An arrival releases parked memos; each release is itself an
        arrival in its destination folder, so releases cascade (the server
        implements a release as an ordinary put — paper section 6.1.2)."""
        pending = [folder]
        while pending:
            f = pending.pop()
            released, self.delayed[f] = self.delayed[f], []
            for dvalue, dest in released:
                self.model[dest][dvalue] += 1
                pending.append(dest)

    @rule(folder=st.sampled_from(FOLDER_IDS), value=st.integers(0, 99))
    def put(self, folder: int, value: int) -> None:
        self.fs.put(fname(folder), MemoRecord.from_value(value))
        self.model[folder][value] += 1
        self._model_arrival(folder)

    @rule(
        folder=st.sampled_from(FOLDER_IDS),
        dest=st.sampled_from(FOLDER_IDS),
        value=st.integers(100, 199),
    )
    def put_delayed(self, folder: int, dest: int, value: int) -> None:
        self.fs.put_delayed(
            fname(folder), fname(dest), MemoRecord.from_value(value)
        )
        self.delayed[folder].append((value, dest))

    @rule(folder=st.sampled_from(FOLDER_IDS))
    def get_skip(self, folder: int) -> None:
        record = self.fs.get_skip(fname(folder))
        if record is None:
            assert sum(self.model[folder].values()) == 0, (
                f"server says folder {folder} empty; model has "
                f"{dict(self.model[folder])}"
            )
        else:
            value = record.value()
            assert self.model[folder][value] > 0, (
                f"server produced {value!r} not in model {dict(self.model[folder])}"
            )
            self.model[folder][value] -= 1

    @rule(folder=st.sampled_from(FOLDER_IDS))
    def get_copy_nonblocking(self, folder: int) -> None:
        # Only probe when the model says a memo exists (copy blocks on empty).
        if sum(self.model[folder].values()) == 0:
            return
        record = self.fs.get_copy(fname(folder), timeout=5)
        assert self.model[folder][record.value()] > 0

    @rule(a=st.sampled_from(FOLDER_IDS), b=st.sampled_from(FOLDER_IDS))
    def get_alt_skip(self, a: int, b: int) -> None:
        hit = self.fs.get_alt_skip((fname(a), fname(b)))
        if hit is None:
            assert sum(self.model[a].values()) == 0
            assert sum(self.model[b].values()) == 0
        else:
            name, record = hit
            folder = name.key.index[0]
            assert folder in (a, b)
            value = record.value()
            assert self.model[folder][value] > 0
            self.model[folder][value] -= 1

    # -- invariants -----------------------------------------------------------

    @invariant()
    def memo_counts_match(self) -> None:
        if not hasattr(self, "fs"):
            return
        expected = sum(sum(c.values()) for c in self.model.values())
        assert self.fs.memo_count() == expected

    @invariant()
    def stats_are_consistent(self) -> None:
        if not hasattr(self, "fs"):
            return
        stats = self.fs.stats
        assert stats.folders_created >= stats.folders_vanished


TestFolderServerStateful = FolderServerMachine.TestCase
TestFolderServerStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
