"""Property-based tests: transferable round-trips and domain laws."""

import math

from hypothesis import given, settings, strategies as st

from repro.transferable.domains import DOMAINS
from repro.transferable.scalars import Int16, Int32, Int64, UInt32
from repro.transferable.wire import decode, encode

# -- value strategies -----------------------------------------------------------

scalars = st.one_of(
    st.builds(Int16, st.integers(-(1 << 15), (1 << 15) - 1)),
    st.builds(Int32, st.integers(-(1 << 31), (1 << 31) - 1)),
    st.builds(Int64, st.integers(-(1 << 63), (1 << 63) - 1)),
    st.builds(UInt32, st.integers(0, (1 << 32) - 1)),
)

leaves = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=30),
    st.binary(max_size=30),
    scalars,
)

hashable_leaves = st.one_of(
    st.booleans(), st.integers(), st.text(max_size=10), scalars
)

values = st.recursive(
    leaves,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.tuples(children, children),
        st.dictionaries(hashable_leaves, children, max_size=4),
    ),
    max_leaves=25,
)


@given(values)
@settings(max_examples=200, deadline=None)
def test_wire_roundtrip_is_identity(obj):
    assert decode(encode(obj)) == obj


@given(values)
@settings(max_examples=100, deadline=None)
def test_encoding_is_deterministic(obj):
    assert encode(obj) == encode(obj)


@given(st.integers())
def test_int_domain_partition(v):
    """Every int is either contained or rejected, consistently with bounds."""
    for name in ("int8", "int16", "int32", "int64"):
        d = DOMAINS[name]
        assert d.contains(v) == (d.lo <= v <= d.hi)


@given(st.integers(-(1 << 63), (1 << 63) - 1))
def test_int64_pack_unpack_identity(v):
    d = DOMAINS["int64"]
    assert d.unpack(d.pack(v)) == v


@given(st.floats(allow_nan=False, allow_infinity=False))
def test_float64_pack_unpack_identity(v):
    d = DOMAINS["float64"]
    assert d.unpack(d.pack(v)) == v


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_float32_idempotent_on_binary32(v):
    """Values already representable in binary32 round-trip exactly."""
    d = DOMAINS["float32"]
    assert d.unpack(d.pack(v)) == v


@given(st.lists(st.integers(), min_size=1, max_size=20))
def test_aliasing_preserved(items):
    """A doubly-referenced list decodes to one object, not two copies."""
    outer = [items, items]
    result = decode(encode(outer))
    assert result[0] is result[1]
    assert result[0] == items


@given(values)
@settings(max_examples=50, deadline=None)
def test_double_encode_stable(obj):
    """encode∘decode∘encode == encode (canonical form is a fixpoint)."""
    once = encode(obj)
    again = encode(decode(once))
    assert decode(again) == decode(once)


@given(st.binary(max_size=200))
@settings(max_examples=300, deadline=None)
def test_decoder_never_crashes_on_junk(data):
    """Arbitrary bytes either decode or raise DecodingError — nothing else."""
    from repro.errors import DecodingError

    try:
        decode(data)
    except DecodingError:
        pass


@given(st.floats(allow_nan=True, allow_infinity=True))
def test_float64_specials(v):
    d = DOMAINS["float64"]
    out = d.unpack(d.pack(v))
    if math.isnan(v):
        assert math.isnan(out)
    else:
        assert out == v
