"""Integration on the heterogeneous star fixture (hub + 2 workstations +
one 8×-power machine), exercising spoke-to-spoke traffic through the hub."""

import threading

import pytest

from repro.core.api import NIL
from repro.core.keys import FolderName, Key, Symbol


def key(i):
    return Key(Symbol("s"), (i,))


class TestStarRouting:
    def test_spoke_to_spoke_via_hub(self, star_cluster):
        """s1 and s2 have no direct link; traffic relays through the hub."""
        memo_s1 = star_cluster.memo_api("s1", "test", "p1")
        memo_s2 = star_cluster.memo_api("s2", "test", "p2")
        for i in range(30):
            memo_s1.put(key(i), f"v{i}", wait=True)
        for i in range(30):
            assert memo_s2.get(key(i)) == f"v{i}"
        hub_stats = star_cluster.stats()["hub"]
        assert hub_stats["memo.forwards_relayed"] > 0

    def test_big_host_owns_most_folders(self, star_cluster):
        reg = star_cluster.servers["hub"].registration("test")
        owned = {"hub": 0, "s1": 0, "s2": 0, "big": 0}
        for i in range(800):
            _sid, owner = reg.placement.place_host(
                FolderName("test", Key(Symbol("probe"), (i,)))
            )
            owned[owner] += 1
        # big: 8 procs at half cost = power 16, but behind a cost-2 link.
        assert owned["big"] == max(owned.values())
        assert owned["big"] > 800 * 0.4

    def test_get_alt_under_contention(self, star_cluster):
        """Several consumers racing get_alt over shared folders: every memo
        delivered exactly once, no duplicates, no losses."""
        n_items = 40
        keys = [key(100 + i) for i in range(8)]
        producer = star_cluster.memo_api("hub", "test", "producer")
        received: list = []
        lock = threading.Lock()
        done = threading.Event()

        def consumer(host, cid):
            memo = star_cluster.memo_api(host, "test", f"c{cid}")
            while not done.is_set():
                hit = memo.get_alt_skip(keys)
                if hit is NIL:
                    continue
                with lock:
                    received.append(hit[1])
                    if len(received) >= n_items:
                        done.set()

        threads = [
            threading.Thread(target=consumer, args=(host, i))
            for i, host in enumerate(["s1", "s2", "big", "hub"])
        ]
        for t in threads:
            t.start()
        for i in range(n_items):
            producer.put(keys[i % len(keys)], i)
        producer.flush()
        done.wait(timeout=60)
        for t in threads:
            t.join(timeout=10)
        assert sorted(received) == list(range(n_items))

    def test_barrier_across_four_hosts(self, star_cluster):
        from repro.core.sync import MemoBarrier

        init_memo = star_cluster.memo_api("hub", "test", "init")
        barrier = MemoBarrier(init_memo, parties=4)
        barrier.initialize()
        generations = []
        lock = threading.Lock()

        def party(host):
            memo = star_cluster.memo_api(host, "test", f"party-{host}")
            b = MemoBarrier(memo, parties=4, symbol=barrier.symbol)
            for _ in range(2):
                g = b.wait()
                with lock:
                    generations.append(g)

        threads = [
            threading.Thread(target=party, args=(h,))
            for h in ("hub", "s1", "s2", "big")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert sorted(generations) == [0, 0, 0, 0, 1, 1, 1, 1]
