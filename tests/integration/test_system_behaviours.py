"""Integration tests for cross-cutting system behaviours."""

import threading
import time

import pytest

from repro import Cluster, system_default_adf
from repro.adf.model import ADF, FolderDecl, HostDecl, ProcessDecl
from repro.adf.topology import ring_links
from repro.core.api import NIL
from repro.core.keys import Key, Symbol
from repro.sim.netsim import LatencyModel


def key(name, *idx):
    return Key(Symbol(name), tuple(idx))


class TestMultiHopRouting:
    """A ring forces multi-hop forwarding (no direct link between far hosts)."""

    @pytest.fixture
    def ring_cluster(self):
        hosts = [f"r{i}" for i in range(5)]
        adf = ADF(app="ring")
        adf.hosts = [HostDecl(h) for h in hosts]
        adf.folders = [FolderDecl(str(i), h) for i, h in enumerate(hosts)]
        adf.processes = [ProcessDecl("0", "boss", hosts[0])]
        adf.links = ring_links(hosts)
        with Cluster(adf, idle_timeout=0.5) as cluster:
            cluster.register()
            yield cluster

    def test_all_folders_reachable_from_any_host(self, ring_cluster):
        memo0 = ring_cluster.memo_api("r0", "ring", "p0")
        memo3 = ring_cluster.memo_api("r3", "ring", "p3")
        for i in range(25):
            memo0.put(key("data", i), i, wait=True)
        for i in range(25):
            assert memo3.get(key("data", i)) == i

    def test_forwarding_relays_happen(self, ring_cluster):
        memo0 = ring_cluster.memo_api("r0", "ring")
        for i in range(40):
            memo0.put(key("spread", i), i, wait=True)
        stats = ring_cluster.stats()
        relayed = sum(s["memo.forwards_relayed"] for s in stats.values())
        assert relayed > 0  # some folder is ≥2 hops away on a 5-ring

    def test_no_routing_loops(self, ring_cluster):
        memo = ring_cluster.memo_api("r2", "ring")
        for i in range(40):
            memo.put(key("loopcheck", i), i, wait=True)
            assert memo.get(key("loopcheck", i)) == i
        assert all(
            s["memo.errors"] == 0 for s in ring_cluster.stats().values()
        )


class TestLatencySimulation:
    def test_remote_roundtrip_slower_than_local(self):
        adf = system_default_adf(["near", "far"], app="lat")
        adf.links[0] = type(adf.links[0])("near", "far", cost=5.0)
        with Cluster(adf, latency=LatencyModel(0, 0.004)) as cluster:
            cluster.register()
            memo = cluster.memo_api("near", "lat")
            # Find keys owned locally vs remotely via placement.
            reg = cluster.servers["near"].registration("lat")
            local_key = remote_key = None
            for i in range(50):
                _sid, owner = reg.placement.place_host(
                    _fname("lat", "probe", i)
                )
                if owner == "near" and local_key is None:
                    local_key = key("probe", i)
                if owner == "far" and remote_key is None:
                    remote_key = key("probe", i)
            assert local_key is not None and remote_key is not None

            def timed_roundtrip(k):
                start = time.monotonic()
                memo.put(k, 1, wait=True)
                memo.get(k)
                return time.monotonic() - start

            local_t = min(timed_roundtrip(local_key) for _ in range(3))
            remote_t = min(timed_roundtrip(remote_key) for _ in range(3))
            # Remote crosses a 20 ms-per-message link four+ times.
            assert remote_t > local_t + 0.02


def _fname(app, name, *idx):
    from repro.core.keys import FolderName

    return FolderName(app, key(name, *idx))


class TestDelayedReleaseAcrossHosts:
    def test_put_delayed_release_to_remote_folder(self, two_host_cluster):
        """The release target may hash to a different host; the folder
        server's emit_put callback routes it through the memo server."""
        memo = two_host_cluster.memo_api("alpha", "test")
        reg = two_host_cluster.servers["alpha"].registration("test")
        # Find a trigger/destination pair owned by different hosts.
        trigger = dest = None
        for i in range(100):
            _sid, owner = reg.placement.place_host(_fname("test", "dr", i))
            if owner == "alpha" and trigger is None:
                trigger = key("dr", i)
            elif owner == "beta" and dest is None:
                dest = key("dr", i)
            if trigger is not None and dest is not None:
                break
        assert trigger is not None and dest is not None
        memo.put_delayed(trigger, dest, "travels", wait=True)
        memo.put(trigger, "arrival", wait=True)
        assert memo.get(dest) == "travels"


class TestManyClients:
    def test_concurrent_producers_consumers(self, two_host_cluster):
        """8 producers and 8 consumers hammer one queue; nothing lost."""
        n_each = 8
        per_producer = 25
        total = n_each * per_producer
        received = []
        lock = threading.Lock()

        def producer(pid):
            memo = two_host_cluster.memo_api("alpha", "test", f"prod{pid}")
            for i in range(per_producer):
                memo.put(key("stream"), (pid, i))
            memo.flush()

        def consumer(cid):
            memo = two_host_cluster.memo_api("beta", "test", f"cons{cid}")
            while True:
                with lock:
                    if len(received) >= total:
                        return
                item = memo.get_skip(key("stream"))
                if item is NIL:
                    time.sleep(0.005)
                    continue
                with lock:
                    received.append(item)

        threads = [
            threading.Thread(target=producer, args=(i,)) for i in range(n_each)
        ] + [threading.Thread(target=consumer, args=(i,)) for i in range(n_each)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert sorted(received) == sorted(
            (p, i) for p in range(n_each) for i in range(per_producer)
        )


class TestThreadCacheUnderLoad:
    def test_connections_reuse_cached_threads(self):
        adf = system_default_adf(["host"], app="tc")
        with Cluster(adf, idle_timeout=5.0) as cluster:
            cluster.register()
            # Sequential short-lived connections: later ones should hit the cache.
            for i in range(6):
                memo = cluster.memo_api("host", "tc", f"p{i}")
                memo.put(key("ping"), i, wait=True)
                memo.get(key("ping"))
                memo.client.close()
                time.sleep(0.02)
            stats = cluster.stats()["host"]
            assert stats["cache.cache_hits"] > 0
