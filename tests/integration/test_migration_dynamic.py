"""Integration: dynamic data migration end-to-end with live clients.

Beyond tests/integration/test_migration.py (which rebalances a quiescent
space), this drives the full re-registration workflow: a changed ADF moves
plain *and* delayed memos in one pass, and getters blocked across the
rebalance survive and complete.
"""

import threading
import time

import pytest

from repro import Cluster
from repro.adf.model import ADF, FolderDecl, HostDecl, LinkDecl, ProcessDecl
from repro.core.keys import FolderName, Key, Symbol


def make_adf(weak_cost: float, strong_cost: float) -> ADF:
    adf = ADF(app="dyn")
    adf.hosts = [
        HostDecl("h1", 1, "x", weak_cost),
        HostDecl("h2", 1, "x", strong_cost),
    ]
    adf.folders = [FolderDecl("0", "h1"), FolderDecl("1", "h2")]
    adf.processes = [ProcessDecl("0", "boss", "h1")]
    adf.links = [LinkDecl("h1", "h2")]
    return adf


@pytest.fixture
def cluster():
    with Cluster(make_adf(1.0, 1.0), idle_timeout=0.5) as c:
        c.register()
        yield c


def moved_keys(cluster, keys, app="dyn"):
    """Keys whose owner changed between the two registrations."""
    reg = cluster.servers["h1"].registration(app)
    return [
        k
        for k in keys
        if reg.placement.place_host(FolderName(app, k))[1] == "h2"
    ]


class TestDynamicMigration:
    def test_one_pass_moves_plain_and_delayed_memos_together(self, cluster):
        memo = cluster.memo_api("h1", "dyn")
        plain = [Key(Symbol("p"), (i,)) for i in range(60)]
        for i, key in enumerate(plain):
            memo.put(key, i, wait=True)
        triggers = [Key(Symbol("t"), (i,)) for i in range(20)]
        dests = [Key(Symbol("dest"), (i,)) for i in range(20)]
        for trig, dest in zip(triggers, dests):
            memo.put_delayed(trig, dest, f"delayed-{dest}", wait=True)

        stats = cluster.rebalance(make_adf(1.0, 0.125))
        migrated = sum(s["migrated_memos"] for s in stats.values())
        assert migrated > 0

        # Plain memos: all retrievable, many now owned by h2.
        assert len(moved_keys(cluster, plain)) > len(plain) // 2
        for i, key in enumerate(plain):
            assert memo.get(key) == i
        # Delayed memos: still fire on arrival wherever they landed.
        for trig, dest in zip(triggers, dests):
            memo.put(trig, "arrival", wait=True)
            assert memo.get(dest) == f"delayed-{dest}"

    def test_blocked_getters_survive_rebalance(self, cluster):
        keys = [Key(Symbol("blocked"), (i,)) for i in range(4)]
        outs: list[list] = [[] for _ in keys]
        waiters = [
            cluster.memo_api("h1", "dyn", f"waiter{i}") for i in range(len(keys))
        ]
        threads = [
            threading.Thread(
                target=lambda i=i: outs[i].append(waiters[i].get(keys[i]))
            )
            for i in range(len(keys))
        ]
        for t in threads:
            t.start()
        time.sleep(0.2)  # all gets are blocked inside folder servers

        cluster.rebalance(make_adf(1.0, 0.125))

        # Blocked folders stayed put (waiters pin them); the getters are
        # satisfied by post-rebalance puts routed under the *new*
        # placement, which the servers still deliver to the pinned folder
        # via their chain/ownership resolution or the waiters' own host.
        feeder = cluster.memo_api("h2", "dyn", "feeder")
        for i, key in enumerate(keys):
            feeder.put(key, f"v{i}", wait=True)
        for i, t in enumerate(threads):
            t.join(timeout=15)
            assert outs[i] == [f"v{i}"], f"waiter {i} did not complete"

    def test_migration_stats_track_both_kinds(self, cluster):
        memo = cluster.memo_api("h1", "dyn")
        for i in range(40):
            memo.put(Key(Symbol("m"), (i,)), i, wait=True)
        for i in range(10):
            memo.put_delayed(
                Key(Symbol("mt"), (i,)), Key(Symbol("md"), (i,)), i, wait=True
            )
        before_live = {
            host: sum(
                fs.memo_count()
                for fs in cluster.servers[host].local_folder_servers().values()
            )
            for host in ("h1", "h2")
        }
        stats = cluster.rebalance(make_adf(1.0, 0.125))
        migrated = sum(s["migrated_memos"] for s in stats.values())
        assert migrated > 0
        after_live = {
            host: sum(
                fs.memo_count()
                for fs in cluster.servers[host].local_folder_servers().values()
            )
            for host in ("h1", "h2")
        }
        # No plain memo lost in transit.
        assert sum(after_live.values()) == sum(before_live.values())
        assert after_live["h2"] > before_live["h2"]

    def test_second_rebalance_moves_nothing_new(self, cluster):
        memo = cluster.memo_api("h1", "dyn")
        for i in range(30):
            memo.put(Key(Symbol("idem"), (i,)), i, wait=True)
        cluster.rebalance(make_adf(1.0, 0.125))
        stats = cluster.rebalance(make_adf(1.0, 0.125))
        assert all(s["migrated_memos"] == 0 for s in stats.values())
