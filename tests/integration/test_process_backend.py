"""Crash semantics, identical under both cluster backends.

The contract of the backend seam: SIGKILLing a host mid-traffic (a real
``kill -9`` in process mode, a thread-pool stop in-process) flips the
failure detector, routing fails over to backups, and ``restart_host``
recovers the host from its WAL and pulls only the outage delta — the
same assertions, parameterized over ``backend={"inprocess", "process"}``
on the same TCP transport with the same durability config.

Plus the supervision guarantees only the process backend can have:
unexpected child death is noticed and mapped onto the parent's failure
detector, and ``stop()`` reaps every child (no zombies).
"""

import os
import signal
import time

import pytest

from repro.adf.defaults import system_default_adf
from repro.core.keys import FolderName, Key, Symbol
from repro.durability.config import DurabilityConfig
from repro.network.routing import RoutingTable
from repro.runtime.cluster import Cluster
from repro.runtime.registration import registration_request_for
from repro.servers.hashing import FolderPlacement

HOSTS = ["h0", "h1", "h2"]
VICTIM = "h1"
APP = "rep"

BACKENDS = ["inprocess", "process"]


def make_cluster(backend: str, tmp_path) -> Cluster:
    adf = system_default_adf(HOSTS, app=APP, replication_factor=2)
    cluster = Cluster(
        adf,
        backend=backend,
        transport_kind="tcp",
        durability=DurabilityConfig(data_dir=str(tmp_path), fsync="always"),
        idle_timeout=0.5,
        heartbeat_interval=0.05,
        failure_threshold=2,
    ).start()
    cluster.register()
    return cluster


def placement_for(adf):
    """The placement every memo server derives from this ADF's registration.

    Computed client-side (the process backend has no server objects to ask),
    from the same RegisterRequest fields the servers receive — so chains
    match what the cluster actually routes on.
    """
    msg = registration_request_for(adf)
    routing = RoutingTable(
        {src: dict(nbrs) for src, nbrs in msg.links.items()},
        hosts=list(msg.host_costs),
    )
    return FolderPlacement(
        [(sid, host) for sid, host in msg.folder_servers],
        host_power=dict(msg.host_costs),
        routing=routing,
        replication_factor=msg.replication_factor,
    )


def keys_with(cluster, picker, n, start=0):
    """Keys whose replica chain satisfies *picker*."""
    placement = placement_for(cluster.adf)
    out = []
    i = start
    while len(out) < n:
        key = Key(Symbol("d"), (i,))
        if picker(placement.replica_chain(FolderName(APP, key))):
            out.append(key)
        i += 1
        if i - start > 10_000:  # pragma: no cover - hash would be broken
            raise AssertionError("could not find enough matching keys")
    return out


def primaried_on(host):
    return lambda chain: chain[0][1] == host


@pytest.fixture(params=BACKENDS)
def cluster(request, tmp_path):
    c = make_cluster(request.param, tmp_path)
    yield c
    c.stop()


class TestCrashSemantics:
    def test_acked_puts_survive_sigkill(self, cluster):
        memo = cluster.memo_api("h0", APP)
        keys = keys_with(cluster, primaried_on(VICTIM), 20)
        for i, key in enumerate(keys):
            memo.put(key, i, wait=True)  # acked ⇒ replicated

        cluster.kill_host(VICTIM)

        got = sorted(memo.get(key) for key in keys)
        assert got == list(range(len(keys)))

    def test_detector_flips_and_writes_fail_over(self, cluster):
        memo = cluster.memo_api("h0", APP)
        cluster.kill_host(VICTIM)

        # Routing fails over: writes primaried on the dead host are
        # accepted by surviving chain members mid-outage.
        keys = keys_with(cluster, primaried_on(VICTIM), 10)
        for i, key in enumerate(keys):
            memo.put(key, i, wait=True)
        assert sorted(memo.get(key) for key in keys) == list(range(len(keys)))

        # And some surviving peer's failure detector has flipped the host.
        from repro.network.protocol import StatsRequest

        def suspected_count():
            total = 0
            for host in HOSTS:
                if host == VICTIM:
                    continue
                with cluster.client_for(host, origin="probe") as client:
                    reply = client.request(StatsRequest(origin="probe"))
                total += reply.stats["failure.suspected_hosts"]
            return total

        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if suspected_count() >= 1:
                break
            time.sleep(0.05)
        assert suspected_count() >= 1

    def test_restart_recovers_wal_and_pulls_only_the_delta(self, cluster):
        memo = cluster.memo_api("h0", APP)
        keys = keys_with(cluster, primaried_on(VICTIM), 25)
        pre, post = keys[:20], keys[20:]
        for key in pre:
            memo.put(key, "pre", wait=True)

        cluster.kill_host(VICTIM)
        time.sleep(0.3)  # let detectors notice and fail over
        for key in post:
            memo.put(key, "post", wait=True)

        stats = cluster.restart_host(VICTIM)
        moved = sum(s["returned"] + s["reseeded"] for s in stats.values())
        # The 5 outage writes come back (returned and/or reseeded); the 20
        # pre-outage writes, already WAL-recovered, must not travel again.
        assert len(post) <= moved <= 2 * len(post)

        values = [memo.get(key) for key in keys]
        assert values.count("pre") == len(pre)
        assert values.count("post") == len(post)

    def test_traffic_flows_normally_after_restart(self, cluster):
        memo = cluster.memo_api("h0", APP)
        cluster.kill_host(VICTIM)
        time.sleep(0.2)
        cluster.restart_host(VICTIM)
        time.sleep(0.3)  # detectors converge back to alive
        for i in range(30):
            memo.put(Key(Symbol("after"), (i,)), i, wait=True)
        assert sorted(
            memo.get(Key(Symbol("after"), (i,))) for i in range(30)
        ) == list(range(30))


class TestSupervision:
    """Process-backend-only guarantees: real PIDs, really supervised."""

    @pytest.fixture
    def pcluster(self, tmp_path):
        c = make_cluster("process", tmp_path)
        yield c
        c.stop()

    def test_kill_host_is_a_real_sigkill(self, pcluster):
        child = pcluster.backend._children[VICTIM]
        assert child.alive
        pcluster.kill_host(VICTIM)
        assert child.proc.returncode == -signal.SIGKILL
        assert not pcluster.backend.is_live(VICTIM)

    def test_supervisor_notices_unexpected_death(self, pcluster):
        # Murder the child behind the cluster's back — no kill_host.
        pid = pcluster.backend._children[VICTIM].proc.pid
        os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if VICTIM in pcluster.backend.failure.dead_hosts():
                break
            time.sleep(0.05)
        assert VICTIM in pcluster.backend.failure.dead_hosts()
        assert [e["host"] for e in pcluster.backend.exit_events] == [VICTIM]
        assert "down" in pcluster.debug_report()

    def test_restart_rebinds_a_fresh_port_and_broadcasts_it(self, pcluster):
        old_port = pcluster.address_book[VICTIM].port
        old_pid = pcluster.backend._children[VICTIM].proc.pid
        pcluster.kill_host(VICTIM)
        pcluster.restart_host(VICTIM)
        assert pcluster.backend._children[VICTIM].proc.pid != old_pid
        assert pcluster.address_book[VICTIM].port != old_port
        # Peers learned the new port: a forward to the reborn host works.
        memo = pcluster.memo_api("h0", APP)
        (key,) = keys_with(pcluster, primaried_on(VICTIM), 1, start=5000)
        memo.put(key, "reborn", wait=True)
        assert memo.get(key) == "reborn"

    def test_stop_reaps_every_child(self, tmp_path):
        cluster = make_cluster("process", tmp_path)
        procs = [child.proc for child in cluster.backend._children.values()]
        assert len(procs) == len(HOSTS)
        cluster.stop()
        for proc in procs:
            assert proc.returncode is not None  # waited on: no zombies
        # Idempotent: a second stop (e.g. context-manager exit after an
        # explicit stop) must not raise.
        cluster.stop()
