"""Cold restarts: kill everything, boot a fresh cluster on the same data
dir, and observe every acknowledged put come back — the tentpole guarantee
of the durable folder stores."""

from collections import Counter

import pytest

from repro.adf.defaults import system_default_adf
from repro.core.keys import Key, Symbol
from repro.durability.config import DurabilityConfig
from repro.runtime.cluster import Cluster

HOSTS = ["h0", "h1", "h2"]
KEYS = [Key(Symbol(name)) for name in ("alpha", "beta", "gamma")]


def make_cluster(tmp_path, *, fsync="always", snapshot_every=8):
    """A 3-host replicated cluster journaling into *tmp_path*."""
    adf = system_default_adf(HOSTS, app="cold", replication_factor=2)
    cfg = DurabilityConfig(
        data_dir=str(tmp_path), fsync=fsync, snapshot_every=snapshot_every
    )
    cluster = Cluster(adf, durability=cfg, idle_timeout=0.5).start()
    cluster.register()
    return cluster


def drain_all(cluster, host="h0"):
    """Consume every available memo from every test folder, as a Counter."""
    got = Counter()
    with cluster.memo_api(host, "cold") as memo:
        for key in KEYS:
            for value in memo.drain(key):
                got[value] += 1
    return got


class TestColdRestart:
    def test_kill_all_cold_restart_zero_acked_loss(self, tmp_path):
        cluster = make_cluster(tmp_path)
        acked = Counter()
        with cluster.memo_api("h0", "cold") as memo:
            for i in range(30):
                key = KEYS[i % len(KEYS)]
                memo.put(key, f"job-{i}", wait=True)
                acked[f"job-{i}"] += 1
        # Abrupt end: every host goes down; fsync=always means each acked
        # put already reached disk before its ack.
        for host in HOSTS:
            cluster.kill_host(host)
        cluster.stop()

        reborn = make_cluster(tmp_path)
        try:
            reborn.resync_all()
            got = drain_all(reborn)
            assert got == acked  # every acked put, exactly once
        finally:
            reborn.stop()

    def test_consumed_memos_stay_consumed(self, tmp_path):
        cluster = make_cluster(tmp_path)
        with cluster.memo_api("h1", "cold") as memo:
            for i in range(10):
                memo.put(KEYS[0], f"v{i}", wait=True)
            eaten = {memo.get(KEYS[0]) for _ in range(4)}
        cluster.stop()

        reborn = make_cluster(tmp_path)
        try:
            reborn.resync_all()
            got = drain_all(reborn)
            assert sum(got.values()) == 6
            assert set(got) == {f"v{i}" for i in range(10)} - eaten
        finally:
            reborn.stop()

    def test_delayed_puts_survive_and_trigger_after_restart(self, tmp_path):
        gate, out = Key(Symbol("gate")), Key(Symbol("out"))
        cluster = make_cluster(tmp_path)
        with cluster.memo_api("h0", "cold") as memo:
            memo.put_delayed(gate, out, "parked", wait=True)
        cluster.stop()

        reborn = make_cluster(tmp_path)
        try:
            reborn.resync_all()
            with reborn.memo_api("h2", "cold") as memo:
                memo.put(gate, "trigger", wait=True)
                assert memo.get(out) == "parked"
                assert memo.get(gate) == "trigger"
        finally:
            reborn.stop()

    def test_snapshots_bound_replay_not_correctness(self, tmp_path):
        """With aggressive snapshotting most of the state loads compacted,
        and the result is identical to pure-WAL replay."""
        cluster = make_cluster(tmp_path, snapshot_every=4)
        acked = Counter()
        with cluster.memo_api("h0", "cold") as memo:
            for i in range(40):
                memo.put(KEYS[i % len(KEYS)], f"s{i}", wait=True)
                acked[f"s{i}"] += 1
        cluster.stop()

        reborn = make_cluster(tmp_path, snapshot_every=4)
        try:
            reborn.resync_all()
            assert drain_all(reborn, host="h1") == acked
            gauges = {
                host: server.durability_gauges()
                for host, server in reborn.servers.items()
            }
            assert sum(g["wal_replayed"] for g in gauges.values()) >= 40
        finally:
            reborn.stop()

    def test_fsync_batch_orderly_shutdown_loses_nothing(self, tmp_path):
        """Batched fsync defers durability, but stop() flushes everything."""
        cluster = make_cluster(tmp_path, fsync="batch")
        with cluster.memo_api("h0", "cold") as memo:
            for i in range(15):
                memo.put(KEYS[0], f"b{i}", wait=True)
        cluster.stop()

        reborn = make_cluster(tmp_path, fsync="batch")
        try:
            reborn.resync_all()
            got = drain_all(reborn, host="h2")
            assert sum(got.values()) == 15
        finally:
            reborn.stop()


class TestDurabilityViaADF:
    def test_adf_durability_section_drives_the_cluster(self, tmp_path):
        from repro.adf.parser import parse_adf

        text = (
            "APP adfdur\n"
            "HOSTS\n"
            "a1 1 sun4 1\n"
            "a2 1 sun4 1\n"
            "FOLDERS\n0 a1\n1 a2\n"
            "PROCESSES\n0 boss a1\n"
            "PPC\na1 <-> a2 1\n"
            f"DURABILITY\ndata_dir {tmp_path}\nfsync always\n"
        )
        adf = parse_adf(text)
        key = Key(Symbol("k"))
        with Cluster(adf, idle_timeout=0.5) as cluster:
            assert cluster.durability is not None
            cluster.register()
            with cluster.memo_api("a1", "adfdur") as memo:
                memo.put(key, "persisted", wait=True)

        with Cluster(parse_adf(text), idle_timeout=0.5) as reborn:
            reborn.register()
            with reborn.memo_api("a2", "adfdur") as memo:
                assert memo.get(key) == "persisted"
