"""Failure injection: corrupt frames, dead peers, half-open connections.

A 1994 departmental network dropped links and corrupted packets; the
foundations must fail loudly and locally, never hang or poison unrelated
connections.
"""

import threading
import time

import pytest

from repro import Cluster, system_default_adf
from repro.core.keys import Key, Symbol
from repro.errors import ConnectionClosedError, FrameError, MemoError
from repro.network.connection import Address
from repro.network.frames import encode_frames
from repro.network.tcp import TCPTransport
from repro.network.transport import InMemoryTransport, NetworkFabric


class TestCorruptInput:
    def test_garbage_bytes_to_memo_server_do_not_kill_it(self):
        """A client sending junk gets disconnected; the server lives on."""
        adf = system_default_adf(["host"], app="fi")
        with Cluster(adf) as cluster:
            cluster.register()
            server_addr = cluster.servers["host"].address
            transport = cluster._transports["host"]

            rogue = transport.connect(server_addr)
            rogue.send(b"\x00\xde\xad\xbe\xef not a protocol message")
            time.sleep(0.1)
            rogue.close()

            # The server still serves well-behaved clients.
            memo = cluster.memo_api("host", "fi")
            memo.put(Key(Symbol("k")), "alive", wait=True)
            assert memo.get(Key(Symbol("k"))) == "alive"

    def test_corrupt_frame_detected_on_tcp(self):
        transport = TCPTransport()
        listener = transport.listen(Address("x", 0))
        client = transport.connect(listener.address)
        server = listener.accept(timeout=5)

        frame = bytearray(b"".join(encode_frames(b"payload")))
        frame[-1] ^= 0xFF  # flip a payload bit: CRC must catch it
        client._sock.sendall(bytes(frame))  # bypass the framing layer

        with pytest.raises(FrameError, match="checksum"):
            server.recv(timeout=5)
        client.close()
        server.close()
        listener.close()

    def test_decoding_error_is_contained(self):
        """A transferable stream with a bad tag fails cleanly."""
        from repro.errors import DecodingError
        from repro.transferable.wire import decode, encode

        data = bytearray(encode({"k": 1}))
        data[11] = 0xEE  # clobber the first node tag
        with pytest.raises(DecodingError):
            decode(bytes(data))


class TestPeerDeath:
    def test_client_death_releases_server_thread(self):
        """A client that vanishes mid-session must not leak its folder."""
        adf = system_default_adf(["host"], app="fi2")
        with Cluster(adf, idle_timeout=0.3) as cluster:
            cluster.register()
            victim = cluster.memo_api("host", "fi2", "victim")
            victim.put(Key(Symbol("data")), "left behind", wait=True)
            victim.client.close()  # process dies

            # Data outlives the process (distribution in time) and the
            # server keeps serving.
            survivor = cluster.memo_api("host", "fi2", "survivor")
            assert survivor.get(Key(Symbol("data"))) == "left behind"

    def test_blocked_get_survives_other_connection_dying(self):
        adf = system_default_adf(["host"], app="fi3")
        with Cluster(adf) as cluster:
            cluster.register()
            waiter = cluster.memo_api("host", "fi3", "waiter")
            out = []
            t = threading.Thread(
                target=lambda: out.append(waiter.get(Key(Symbol("slow"))))
            )
            t.start()
            time.sleep(0.05)

            # Another connection opens and dies violently.
            doomed = cluster.memo_api("host", "fi3", "doomed")
            doomed.client.close()
            time.sleep(0.05)

            # The waiter is unaffected and gets its memo.
            filler = cluster.memo_api("host", "fi3", "filler")
            filler.put(Key(Symbol("slow")), "eventually")
            t.join(timeout=5)
            assert out == ["eventually"]

    def test_connect_to_stopped_cluster_fails_fast(self):
        adf = system_default_adf(["host"], app="fi4")
        cluster = Cluster(adf).start()
        cluster.register()
        transport = cluster._transports["host"]
        address = cluster.servers["host"].address
        cluster.stop()
        with pytest.raises(ConnectionClosedError):
            transport.connect(address)


class TestInMemoryHalfOpen:
    def test_send_into_closed_peer_raises_eventually(self):
        fabric = NetworkFabric()
        transport = InMemoryTransport(fabric, "h")
        listener = transport.listen(Address("h", 1))
        client = transport.connect(listener.address)
        server = listener.accept(timeout=2)
        server.close()
        # The close marker is in flight; recv must observe it.
        with pytest.raises(ConnectionClosedError):
            client.recv(timeout=2)
        listener.close()


class TestApplicationLevelErrors:
    def test_error_reply_does_not_poison_connection(self, one_host_cluster):
        memo_bad = one_host_cluster.memo_api("solo", "not-registered")
        memo_good = one_host_cluster.memo_api("solo", "test")
        with pytest.raises(MemoError):
            memo_bad.get_skip(Key(Symbol("x")))
        # Same server, different connection: unaffected.
        memo_good.put(Key(Symbol("x")), 1, wait=True)
        assert memo_good.get(Key(Symbol("x"))) == 1
        # Even the same connection recovers after the error reply.
        with pytest.raises(MemoError):
            memo_bad.get_skip(Key(Symbol("x")))

    def test_worker_crash_reported_not_hung(self):
        from repro import ProgramRegistry, run_application

        adf = system_default_adf(["host"], app="crash")
        registry = ProgramRegistry()

        @registry.register("boss")
        def boss(memo, ctx):
            return "boss done"

        @registry.register("worker")
        def worker(memo, ctx):
            raise OSError("simulated machine fault")

        with pytest.raises(OSError, match="machine fault"):
            run_application(adf, registry, timeout=30)
