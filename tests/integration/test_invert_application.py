"""Integration: the paper's `invert` application on its Figure-3 topology.

A boss distributes matrix rows to workers through a job jar; workers
compute the Gauss-Jordan elimination steps for their rows and deposit
results into an I-structure; the boss assembles the inverse.  This is the
medium-grain boss/worker decomposition of section 4.2 running on the exact
host/folder/process layout of the section 4.3 example ADF (3 "Sparc" hosts
plus one 128-processor "SP-1", star topology with a costlier SP-1 link).
"""

import numpy as np
import pytest

from repro import Cluster, ProgramRegistry, run_application
from repro.adf.parser import parse_adf
from repro.core.api import NIL
from repro.core.keys import Key, Symbol

FIG3_ADF = """
APP invert
HOSTS
glen-ellyn 1 sun4 1
aurora     1 sun4 1
joliet     1 sun4 1
bonnie     8 sp1  sun4*0.5
FOLDERS
0   glen-ellyn
1   aurora
2   joliet
3-8 bonnie
PROCESSES
0   boss   glen-ellyn
1   worker aurora
2   worker joliet
3-6 worker bonnie
PPC
glen-ellyn <-> aurora 1
glen-ellyn <-> joliet 1
glen-ellyn <-> bonnie 2
"""

N = 8  # matrix size

JAR = Symbol("jar")
RESULT = Symbol("result")
MATRIX = Symbol("matrix")
DONE = Symbol("done")


def make_registry():
    registry = ProgramRegistry()

    @registry.register("boss")
    def boss(memo, ctx):
        rng = np.random.default_rng(94)
        a = rng.uniform(-1, 1, (N, N)) + np.eye(N) * N  # well-conditioned
        # Publish the matrix (read-only broadcast via get_copy).
        memo.put(Key(MATRIX), a.tolist(), wait=True)
        # One task per column of the inverse: solve A x = e_j.
        for j in range(N):
            memo.put(Key(JAR), {"column": j})
        memo.flush()
        # Assemble the inverse column by column.
        inv = np.zeros((N, N))
        for _ in range(N):
            res = memo.get(Key(RESULT))
            inv[:, res["column"]] = res["values"]
        # Tell the workers to go home.
        for _ in range(len(ctx.peers) - 1):
            memo.put(Key(JAR), {"stop": True})
        memo.flush()
        a_inv_err = float(np.abs(a @ inv - np.eye(N)).max())
        return {"max_error": a_inv_err}

    @registry.register("worker")
    def worker(memo, ctx):
        a = None
        solved = 0
        while True:
            task = memo.get(Key(JAR))
            if task.get("stop"):
                return solved
            if a is None:
                a = np.array(memo.get_copy(Key(MATRIX)))
            j = task["column"]
            e = np.zeros(N)
            e[j] = 1.0
            x = np.linalg.solve(a, e)
            memo.put(Key(RESULT), {"column": j, "values": x.tolist()})
            solved += 1

    return registry


@pytest.fixture
def invert_adf():
    adf = parse_adf(FIG3_ADF)
    adf.validate()
    return adf


class TestInvertApplication:
    def test_full_run_produces_correct_inverse(self, invert_adf):
        results = run_application(invert_adf, make_registry(), timeout=120)
        assert results["0"]["max_error"] < 1e-8

    def test_work_was_parallelized(self, invert_adf):
        results = run_application(invert_adf, make_registry(), timeout=120)
        worker_counts = [v for k, v in results.items() if k != "0"]
        assert sum(worker_counts) == N
        # More than one worker actually contributed.
        assert sum(1 for c in worker_counts if c > 0) >= 2

    def test_no_broadcasts_and_sp1_owns_most_folders(self, invert_adf):
        cluster = Cluster(invert_adf).start()
        try:
            cluster.register()
            run_application(
                invert_adf, make_registry(), cluster=cluster, timeout=120
            )
            metrics = cluster.metrics()
            assert metrics.broadcasts == 0
            # Proportional ownership is a statement over *many* folders
            # (the app itself uses only 3); probe with a folder spray.
            reg = cluster.servers["glen-ellyn"].registration("invert")
            from repro.core.keys import FolderName

            n_probe = 1000
            bonnie_owned = 0
            for i in range(n_probe):
                _sid, owner = reg.placement.place_host(
                    FolderName("invert", Key(Symbol("probe"), (i,)))
                )
                if owner == "bonnie":
                    bonnie_owned += 1
            # bonnie has 16 of the network's ~19 power units, discounted
            # by its costlier star link — still the clear majority owner.
            assert bonnie_owned / n_probe > 0.5
        finally:
            cluster.stop()
