"""Satellite coverage: ``get_alt``/``get_alt_skip`` across fail-over.

Kill the primary of one alternative mid-wait and assert the waiter
completes from a surviving replica (or re-subscribes cleanly through the
transient window while the failure detector converges).
"""

import threading
import time

import pytest

from repro import NIL, Cluster, system_default_adf
from repro.core.keys import FolderName, Key, Symbol

HOSTS = ["h1", "h2", "h3"]
VICTIM = "h2"


@pytest.fixture
def cluster():
    adf = system_default_adf(HOSTS, app="alt", replication_factor=2)
    with Cluster(
        adf, idle_timeout=0.5, heartbeat_interval=0.05, failure_threshold=2
    ) as c:
        c.register()
        yield c


def keys_with(cluster, picker, n, start=0):
    reg = cluster.servers[HOSTS[0]].registration("alt")
    out, i = [], start
    while len(out) < n:
        key = Key(Symbol("a"), (i,))
        if picker(reg.placement.replica_chain(FolderName("alt", key))):
            out.append(key)
        i += 1
        if i - start > 10_000:  # pragma: no cover - hash would be broken
            raise AssertionError("could not find enough matching keys")
    return out


def primaried_on(host):
    return lambda chain: chain[0][1] == host


class TestGetAltFailover:
    def test_waiter_completes_from_surviving_replica(self, cluster):
        """The killed primary's alternative is fed via its backup."""
        (victim_key,) = keys_with(cluster, primaried_on(VICTIM), 1)
        (other_key,) = keys_with(cluster, primaried_on("h3"), 1, start=3000)
        waiter = cluster.memo_api("h1", "alt", "waiter")
        out = []
        t = threading.Thread(
            target=lambda: out.append(
                waiter.get_alt([victim_key, other_key], timeout=20)
            )
        )
        t.start()
        time.sleep(0.2)  # the poll loop is live and finding both empty
        assert out == []

        cluster.kill_host(VICTIM)
        # Feed the *victim-primaried* alternative: the put fails over to
        # the surviving backup, where the poll must find it.
        filler = cluster.memo_api("h3", "alt", "filler")
        filler.put(victim_key, "rescued", wait=True)

        t.join(timeout=20)
        assert t.is_alive() is False
        assert out and out[0] == (victim_key, "rescued")

    def test_waiter_completes_via_other_alternative(self, cluster):
        """Mid-kill polling rides through; a healthy alternative wins."""
        (victim_key,) = keys_with(cluster, primaried_on(VICTIM), 1, start=500)
        (other_key,) = keys_with(cluster, primaried_on("h1"), 1, start=4000)
        waiter = cluster.memo_api("h1", "alt", "waiter")
        future = waiter.get_alt_async([victim_key, other_key])
        time.sleep(0.1)
        assert not future.done()

        cluster.kill_host(VICTIM)
        filler = cluster.memo_api("h1", "alt", "filler")
        filler.put(other_key, "healthy", wait=True)

        key, value = future.wait(timeout=20)
        assert key == other_key and value == "healthy"

    def test_get_alt_skip_after_kill_routes_past_dead_primary(self, cluster):
        (victim_key,) = keys_with(cluster, primaried_on(VICTIM), 1, start=1000)
        memo = cluster.memo_api("h1", "alt", "m")
        memo.put(victim_key, "pre-kill", wait=True)  # acked ⇒ replicated

        cluster.kill_host(VICTIM)
        time.sleep(0.2)  # let the detectors flip the victim

        hit = memo.get_alt_skip([victim_key])
        assert hit is not NIL
        assert hit == (victim_key, "pre-kill")

    def test_waiter_survives_kill_then_restart_cycle(self, cluster):
        (victim_key,) = keys_with(cluster, primaried_on(VICTIM), 1, start=2000)
        waiter = cluster.memo_api("h1", "alt", "waiter")
        future = waiter.get_alt_async([victim_key])
        time.sleep(0.1)

        cluster.kill_host(VICTIM)
        time.sleep(0.15)
        cluster.restart_host(VICTIM)

        filler = cluster.memo_api("h1", "alt", "filler")
        filler.put(victim_key, "after-restart", wait=True)
        key, value = future.wait(timeout=20)
        assert key == victim_key and value == "after-restart"
