"""Integration: dynamic data migration (ownership rebalancing).

The paper's abstract promises "dynamic data migration across HC machines".
In the reproduction, a re-registration with new host costs changes the
cost-weighted placement, and :meth:`Cluster.rebalance` physically moves
folder contents to their new owners through ordinary routed puts.
"""

import copy

import pytest

from repro import Cluster
from repro.adf.model import ADF, FolderDecl, HostDecl, LinkDecl, ProcessDecl
from repro.core.keys import FolderName, Key, Symbol


def make_adf(weak_cost: float, strong_cost: float) -> ADF:
    adf = ADF(app="mig")
    adf.hosts = [
        HostDecl("h1", 1, "x", weak_cost),
        HostDecl("h2", 1, "x", strong_cost),
    ]
    adf.folders = [FolderDecl("0", "h1"), FolderDecl("1", "h2")]
    adf.processes = [ProcessDecl("0", "boss", "h1")]
    adf.links = [LinkDecl("h1", "h2")]
    return adf


N = 120


@pytest.fixture
def cluster():
    with Cluster(make_adf(1.0, 1.0), idle_timeout=0.5) as c:
        c.register()
        yield c


def owner_counts(cluster, app="mig", n=N):
    reg = cluster.servers["h1"].registration(app)
    counts = {"h1": 0, "h2": 0}
    for i in range(n):
        _sid, owner = reg.placement.place_host(
            FolderName(app, Key(Symbol("d"), (i,)))
        )
        counts[owner] += 1
    return counts


class TestRebalance:
    def test_data_survives_ownership_change(self, cluster):
        memo = cluster.memo_api("h1", "mig")
        for i in range(N):
            memo.put(Key(Symbol("d"), (i,)), i, wait=True)

        before = owner_counts(cluster)
        # h2 becomes 8x cheaper: most folders should move to it.
        stats = cluster.rebalance(make_adf(1.0, 0.125))
        after = owner_counts(cluster)
        assert after["h2"] > before["h2"]
        assert sum(s["migrated_memos"] for s in stats.values()) > 0

        # Every memo is still exactly once in the space.
        for i in range(N):
            assert memo.get(Key(Symbol("d"), (i,))) == i

    def test_migration_moves_live_memos_between_hosts(self, cluster):
        memo = cluster.memo_api("h1", "mig")
        for i in range(N):
            memo.put(Key(Symbol("d"), (i,)), {"v": i}, wait=True)
        live_before = {
            host: sum(
                fs.memo_count()
                for fs in cluster.servers[host].local_folder_servers().values()
            )
            for host in ("h1", "h2")
        }
        cluster.rebalance(make_adf(1.0, 0.125))
        live_after = {
            host: sum(
                fs.memo_count()
                for fs in cluster.servers[host].local_folder_servers().values()
            )
            for host in ("h1", "h2")
        }
        assert sum(live_after.values()) == sum(live_before.values()) == N
        assert live_after["h2"] > live_before["h2"]

    def test_delayed_memos_migrate_intact(self, cluster):
        memo = cluster.memo_api("h1", "mig")
        trigger = Key(Symbol("trigger"))
        dest = Key(Symbol("dest"))
        memo.put_delayed(trigger, dest, "delayed-payload", wait=True)
        cluster.rebalance(make_adf(1.0, 0.125))
        # The delayed memo still fires on arrival after migration.
        memo.put(trigger, "arrival", wait=True)
        assert memo.get(dest) == "delayed-payload"

    def test_rebalance_is_idempotent_when_nothing_changes(self, cluster):
        memo = cluster.memo_api("h1", "mig")
        for i in range(20):
            memo.put(Key(Symbol("d"), (i,)), i, wait=True)
        cluster.rebalance(make_adf(1.0, 0.125))
        stats2 = cluster.rebalance(make_adf(1.0, 0.125))
        assert all(s["migrated_memos"] == 0 for s in stats2.values())

    def test_new_puts_use_new_placement(self, cluster):
        cluster.rebalance(make_adf(1.0, 0.125))
        memo = cluster.memo_api("h1", "mig")
        for i in range(60):
            memo.put(Key(Symbol("fresh"), (i,)), i, wait=True)
        per_host = {
            host: sum(
                fs.stats.puts
                for fs in cluster.servers[host].local_folder_servers().values()
            )
            for host in ("h1", "h2")
        }
        assert per_host["h2"] > per_host["h1"]
