"""Delta anti-entropy: WAL-recovered restarts pull only the outage delta,
and the opt-in periodic sweep heals divergence without a restart."""

import time
from collections import Counter

import pytest

from repro.adf.defaults import system_default_adf
from repro.core.keys import FolderName, Key, Symbol
from repro.durability.config import DurabilityConfig
from repro.errors import RuntimeLaunchError
from repro.runtime.cluster import Cluster
from repro.servers.memo_server import MemoServer
from repro.sim.netsim import latency_spike, partitioned

HOSTS = ["h0", "h1", "h2"]
APP = "delta"


def make_cluster(tmp_path, *, durable=True):
    adf = system_default_adf(HOSTS, app=APP, replication_factor=2)
    cfg = (
        DurabilityConfig(data_dir=str(tmp_path), fsync="always")
        if durable
        else None
    )
    cluster = Cluster(adf, durability=cfg, idle_timeout=0.5).start()
    cluster.register()
    return cluster


def chain_for(cluster, name: str):
    """The replica chain ((sid, host), ...) the cluster places *name* on."""
    reg = cluster.servers[HOSTS[0]]._registrations[APP]
    return reg.placement.replica_chain(FolderName(APP, Key(Symbol(name))))


def key_primaried_on(cluster, host: str) -> Key:
    """A folder key whose primary lands on *host* under the current placement."""
    for i in range(200):
        name = f"k{i}"
        if chain_for(cluster, name)[0][1] == host:
            return Key(Symbol(name))
    raise AssertionError(f"no probed folder hashes to {host}")


def drain(cluster, host, key) -> Counter:
    got = Counter()
    with cluster.memo_api(host, APP) as memo:
        for value in memo.drain(key):
            got[value] += 1
    return got


class TestDeltaRestart:
    def test_restart_sends_no_full_syncpull(self, tmp_path, monkeypatch):
        """A durable restart must use DeltaSyncPull, never the full pull."""
        full_pulls = []
        original = MemoServer._handle_sync_pull

        def spy(self, msg):
            full_pulls.append(msg)
            return original(self, msg)

        monkeypatch.setattr(MemoServer, "_handle_sync_pull", spy)
        cluster = make_cluster(tmp_path)
        try:
            with cluster.memo_api("h0", APP) as memo:
                for i in range(12):
                    memo.put(Key(Symbol(f"k{i}")), f"v{i}", wait=True)
            cluster.kill_host("h1")
            stats = cluster.restart_host("h1")
            assert full_pulls == []  # delta path only
            # Nothing was written during the outage: the recovered WAL
            # already covers everything, so the round moves zero records.
            for peer_stats in stats.values():
                assert peer_stats == {"returned": 0, "reseeded": 0}
        finally:
            cluster.stop()

    def test_in_memory_cluster_still_uses_full_syncpull(self, tmp_path, monkeypatch):
        """Without durability there is no recovered LSN to delta against."""
        full_pulls = []
        original = MemoServer._handle_sync_pull

        def spy(self, msg):
            full_pulls.append(msg)
            return original(self, msg)

        monkeypatch.setattr(MemoServer, "_handle_sync_pull", spy)
        cluster = make_cluster(tmp_path, durable=False)
        try:
            cluster.kill_host("h1")
            cluster.restart_host("h1")
            assert len(full_pulls) > 0
        finally:
            cluster.stop()

    def test_restart_pulls_only_outage_writes(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            key = key_primaried_on(cluster, "h1")
            with cluster.memo_api("h0", APP) as memo:
                for i in range(20):
                    memo.put(key, f"pre-{i}", wait=True)
            cluster.kill_host("h1")
            time.sleep(0.5)  # let peers suspect h1 and fail over
            with cluster.memo_api("h0", APP) as memo:
                for i in range(5):
                    memo.put(key, f"mid-{i}", wait=True)
            stats = cluster.restart_host("h1")
            moved = sum(s["returned"] + s["reseeded"] for s in stats.values())
            # The 5 outage writes come back (returned to the primary and/or
            # reseeded into its replica stores); the 20 pre-outage writes,
            # already WAL-recovered, must not travel again.
            assert 5 <= moved <= 10
            got = drain(cluster, "h2", key)
            assert set(got) == {f"pre-{i}" for i in range(20)} | {
                f"mid-{i}" for i in range(5)
            }
            assert all(count == 1 for count in got.values())
        finally:
            cluster.stop()

    def test_restart_during_latency_spike_loses_nothing(self, tmp_path):
        """Chaos: the rejoin round runs while one link is congested and
        another is partitioned; after healing, resync_all converges with
        no lost acked puts and bounded duplicates."""
        cluster = make_cluster(tmp_path)
        try:
            key = key_primaried_on(cluster, "h1")
            acked = []
            with cluster.memo_api("h0", APP) as memo:
                for i in range(15):
                    memo.put(key, f"a{i}", wait=True)
                    acked.append(f"a{i}")
            cluster.kill_host("h1")
            time.sleep(0.5)
            with cluster.memo_api("h0", APP) as memo:
                for i in range(5):
                    memo.put(key, f"late{i}", wait=True)
                    acked.append(f"late{i}")
            fabric = cluster.fabric
            with latency_spike(fabric, "h0", "h1", 0.05):
                with partitioned(fabric, "h1", "h2"):
                    cluster.restart_host("h1")  # h2 unreachable: skipped
            cluster.resync_all()  # healed: the skipped peer contributes now
            got = drain(cluster, "h2", key)
            assert set(got) == set(acked)  # no acked put lost
            assert all(count <= 2 for count in got.values())  # bounded dups
        finally:
            cluster.stop()


class TestColdRestartClockContinuity:
    def test_regrown_clock_does_not_shadow_crash_lost_writes(self, tmp_path):
        """A log-less restart resumes the LSN clock past the dead
        incarnation and advertises the gap as a resync floor.

        Without the rebase, the fresh clock regrows through the crash-lost
        range and a later delta sweep concludes the primary "already
        holds" the pre-crash writes sitting in its backup's replica store
        — permanently stranding acked data.  The sequence: ack writes,
        crash the primary, restart it while its backup is unreachable
        (the rejoin round cannot return anything), regrow the clock with
        fresh traffic, heal, then run one ordinary delta sweep.
        """
        cluster = make_cluster(tmp_path, durable=False)
        try:
            key = key_primaried_on(cluster, "h1")
            backup = chain_for(cluster, key.symbol.name)[1][1]
            with cluster.memo_api("h0", APP) as memo:
                for i in range(20):
                    memo.put(key, f"pre-{i}", wait=True)
            cluster.kill_host("h1")
            time.sleep(0.5)
            with partitioned(cluster.fabric, "h1", backup):
                cluster.restart_host("h1")  # rejoin pull cannot reach backup
                # Fresh traffic regrows the clock well past the lsn range
                # of the 20 crash-lost records.
                with cluster.memo_api("h0", APP) as memo:
                    for i in range(40):
                        memo.put(key, f"post-{i}", wait=True)
            cluster.resync_all()  # ordinary delta sweep, healed fabric
            got = drain(cluster, "h2", key)
            assert set(got) >= {f"pre-{i}" for i in range(20)}
            assert set(got) >= {f"post-{i}" for i in range(40)}
        finally:
            cluster.stop()

    def test_respawn_resumes_stamping_past_dead_incarnation(self, tmp_path):
        """Post-restart stamps must not reuse the dead incarnation's
        origin coordinates, or replica-side dedup drops fresh backups."""
        cluster = make_cluster(tmp_path, durable=False)
        try:
            key = key_primaried_on(cluster, "h1")
            with cluster.memo_api("h0", APP) as memo:
                for i in range(10):
                    memo.put(key, f"old-{i}", wait=True)
            sid = chain_for(cluster, key.symbol.name)[0][0]
            dead_clock = cluster.servers["h1"]._folder_servers[sid].current_lsn()
            cluster.kill_host("h1")
            time.sleep(0.5)
            cluster.restart_host("h1")
            store = cluster.servers["h1"]._folder_servers[sid]
            assert store.current_lsn() >= dead_clock
            assert store.resync_floor() >= dead_clock
        finally:
            cluster.stop()


class TestAntiEntropySweep:
    def test_sweep_heals_partition_divergence(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            key = key_primaried_on(cluster, "h0")
            chain = chain_for(cluster, key.symbol.name)
            backup = chain[1][1]
            other = next(h for h in HOSTS if h not in (chain[0][1], backup))
            # Writes accepted while the primary cannot reach its backup
            # leave the replica store behind.
            with partitioned(cluster.fabric, "h0", backup):
                with cluster.memo_api("h0", APP) as memo:
                    for i in range(8):
                        memo.put(key, f"div-{i}", wait=True)
            # The backup keys the replica store by its own chain-entry sid.
            replica = cluster.servers[backup]._replica_server(chain[1][0])
            before = len(replica.snapshot_state()[1])

            cluster.start_anti_entropy(0.05)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if len(replica.snapshot_state()[1]) > before:
                    break
                time.sleep(0.05)
            cluster.stop_anti_entropy()

            dump = {
                name: [m.payload for m in memos]
                for name, memos, _delayed in replica.snapshot_state()[1]
            }
            healed = dump.get(FolderName(APP, key), [])
            assert len(healed) == 8  # the backup caught up without a restart

            # And the healed copies actually serve: fail the primary over.
            cluster.kill_host(chain[0][1])
            time.sleep(0.5)
            got = drain(cluster, other, key)
            assert set(got) == {f"div-{i}" for i in range(8)}
        finally:
            cluster.stop()

    def test_sweep_is_idempotent_when_healthy(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            with cluster.memo_api("h0", APP) as memo:
                for i in range(10):
                    memo.put(Key(Symbol(f"k{i}")), f"v{i}", wait=True)
            first = cluster.resync_all()
            second = cluster.resync_all()
            for round_stats in (first, second):
                for peers in round_stats.values():
                    for stats in peers.values():
                        assert stats == {"returned": 0, "reseeded": 0}
        finally:
            cluster.stop()

    def test_start_twice_rejected_and_stop_idempotent(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            cluster.start_anti_entropy(30.0)
            with pytest.raises(RuntimeLaunchError):
                cluster.start_anti_entropy(30.0)
            cluster.stop_anti_entropy()
            cluster.stop_anti_entropy()  # no-op
            cluster.start_anti_entropy(30.0)  # restartable after stop
        finally:
            cluster.stop()
