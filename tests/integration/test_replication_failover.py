"""Integration: replica chains, fail-over, and anti-entropy resync.

The acceptance scenario for the replication subsystem: on a three-host
in-memory cluster with ``replication_factor=2``, killing a primary host
mid-workload loses zero acknowledged puts, blocked ``get``s complete via a
backup, and a restarted host is healed by one anti-entropy round.
"""

import threading
import time

import pytest

from repro import NIL, Cluster, system_default_adf
from repro.core.keys import FolderName, Key, Symbol

HOSTS = ["h1", "h2", "h3"]
VICTIM = "h2"


@pytest.fixture
def cluster():
    adf = system_default_adf(HOSTS, app="rep", replication_factor=2)
    with Cluster(
        adf, idle_timeout=0.5, heartbeat_interval=0.05, failure_threshold=2
    ) as c:
        c.register()
        yield c


def keys_with(cluster, picker, n, start=0):
    """Keys whose replica chain satisfies *picker*, from a scan of keys."""
    reg = cluster.servers[HOSTS[0]].registration("rep")
    out = []
    i = start
    while len(out) < n:
        key = Key(Symbol("d"), (i,))
        if picker(reg.placement.replica_chain(FolderName("rep", key))):
            out.append(key)
        i += 1
        if i - start > 10_000:  # pragma: no cover - hash would be broken
            raise AssertionError("could not find enough matching keys")
    return out


def primaried_on(host):
    return lambda chain: chain[0][1] == host


class TestFailover:
    def test_acked_puts_survive_primary_kill(self, cluster):
        memo = cluster.memo_api("h1", "rep")
        keys = keys_with(cluster, primaried_on(VICTIM), 40)
        for i, key in enumerate(keys):
            memo.put(key, i, wait=True)  # acked ⇒ replicated

        cluster.kill_host(VICTIM)

        got = sorted(memo.get(key) for key in keys)
        assert got == list(range(len(keys)))

    def test_blocked_get_completes_via_backup(self, cluster):
        (key,) = keys_with(cluster, primaried_on(VICTIM), 1, start=5000)
        waiter = cluster.memo_api("h1", "rep", "waiter")
        out = []
        t = threading.Thread(target=lambda: out.append(waiter.get(key)))
        t.start()
        time.sleep(0.2)  # the get is blocked inside the primary

        cluster.kill_host(VICTIM)
        filler = cluster.memo_api("h3", "rep", "filler")
        filler.put(key, "rescued", wait=True)

        t.join(timeout=15)
        assert out == ["rescued"]

    def test_writes_during_outage_are_accepted_and_served(self, cluster):
        memo = cluster.memo_api("h1", "rep")
        cluster.kill_host(VICTIM)
        keys = keys_with(cluster, primaried_on(VICTIM), 20)
        for i, key in enumerate(keys):
            memo.put(key, i, wait=True)
        assert sorted(memo.get(key) for key in keys) == list(range(len(keys)))

    def test_delayed_memos_replicate_and_fire_through_failover(self, cluster):
        memo = cluster.memo_api("h1", "rep")
        (trigger,) = keys_with(cluster, primaried_on(VICTIM), 1, start=7000)
        dest = Key(Symbol("dest"))
        memo.put_delayed(trigger, dest, "delayed-payload", wait=True)

        cluster.kill_host(VICTIM)
        memo.put(trigger, "arrival", wait=True)  # fires on the backup
        assert memo.get(dest) == "delayed-payload"

    def test_failover_stats_are_reported(self, cluster):
        memo = cluster.memo_api("h1", "rep")
        keys = keys_with(cluster, primaried_on(VICTIM), 10)
        for key in keys:
            memo.put(key, "x", wait=True)
        stats = {
            host: cluster.servers[host].stats.snapshot()
            for host in HOSTS
        }
        assert sum(s["replications_out"] for s in stats.values()) >= len(keys)
        assert sum(s["replications_in"] for s in stats.values()) >= len(keys)


class TestResync:
    def test_restart_returns_missed_and_pre_crash_memos(self, cluster):
        memo = cluster.memo_api("h1", "rep")
        keys = keys_with(cluster, primaried_on(VICTIM), 40)
        pre, post = keys[:20], keys[20:]
        for key in pre:
            memo.put(key, "pre", wait=True)

        cluster.kill_host(VICTIM)
        time.sleep(0.15)  # let detectors notice
        for key in post:
            memo.put(key, "post", wait=True)

        stats = cluster.restart_host(VICTIM)
        returned = sum(s["returned"] for s in stats.values())
        assert returned == len(keys)
        # Every memo is back on the rejoined primary and retrievable.
        live = sum(
            fs.memo_count()
            for fs in cluster.servers[VICTIM].local_folder_servers().values()
        )
        assert live == len(keys)
        values = {memo.get_skip(key) for key in keys}
        assert NIL not in values and values == {"pre", "post"}

    def test_restart_reseeds_replica_copies(self, cluster):
        memo = cluster.memo_api("h1", "rep")
        backed = keys_with(
            cluster,
            lambda chain: chain[0][1] != VICTIM
            and any(h == VICTIM for _s, h in chain[1:]),
            15,
        )
        for key in backed:
            memo.put(key, "v", wait=True)

        cluster.kill_host(VICTIM)
        time.sleep(0.15)
        stats = cluster.restart_host(VICTIM)

        assert sum(s["reseeded"] for s in stats.values()) == len(backed)
        replica_live = sum(
            fs.memo_count()
            for fs in cluster.servers[VICTIM].local_replica_servers().values()
        )
        assert replica_live == len(backed)

    def test_traffic_flows_normally_after_restart(self, cluster):
        memo = cluster.memo_api("h1", "rep")
        cluster.kill_host(VICTIM)
        time.sleep(0.15)
        cluster.restart_host(VICTIM)
        time.sleep(0.2)  # detectors converge back to alive
        for i in range(30):
            memo.put(Key(Symbol("after"), (i,)), i, wait=True)
        assert sorted(
            memo.get(Key(Symbol("after"), (i,))) for i in range(30)
        ) == list(range(30))


class TestSingleOwnerEquivalence:
    """``replication_factor=1`` must reproduce seed behaviour exactly."""

    def test_no_replication_machinery_runs_by_default(self):
        adf = system_default_adf(HOSTS, app="solo")
        with Cluster(adf, idle_timeout=0.5) as c:
            c.register()
            memo = c.memo_api("h1", "solo")
            for i in range(50):
                memo.put(Key(Symbol("k"), (i,)), i, wait=True)
            for i in range(50):
                assert memo.get(Key(Symbol("k"), (i,))) == i
            for host in HOSTS:
                server = c.servers[host]
                stats = server.stats.snapshot()
                assert stats["replications_out"] == 0
                assert stats["replications_in"] == 0
                assert stats["failover_dispatches"] == 0
                assert not server._monitor.running
                assert server.local_replica_servers() == {}

    def test_chain_placement_equals_single_owner_placement(self, cluster):
        reg = cluster.servers["h1"].registration("rep")
        for i in range(500):
            name = FolderName("rep", Key(Symbol("e"), (i,)))
            assert reg.placement.replica_chain(name)[0] == (
                reg.placement.place_host(name)
            )
