"""Unit tests for the transferable scalar wrappers."""

import pytest

from repro.errors import DecodingError, LossyMappingError
from repro.transferable.scalars import (
    SCALAR_TYPES,
    Blob,
    Bool,
    Char,
    Float32,
    Float64,
    Int16,
    Int32,
    Int64,
    String,
    UInt8,
)


class TestConstruction:
    def test_valid_value_stored(self):
        assert Int16(300).value == 300

    def test_out_of_domain_rejected_at_construction(self):
        with pytest.raises(LossyMappingError):
            Int16(70_000)

    def test_immutable(self):
        x = Int32(5)
        with pytest.raises(AttributeError):
            x._value = 6

    def test_repr(self):
        assert repr(Int32(5)) == "Int32(5)"


class TestEquality:
    def test_same_domain_same_value_equal(self):
        assert Int16(5) == Int16(5)
        assert hash(Int16(5)) == hash(Int16(5))

    def test_different_domain_not_equal(self):
        assert Int16(5) != Int32(5)

    def test_different_value_not_equal(self):
        assert Int16(5) != Int16(6)

    def test_not_equal_to_raw_value(self):
        assert Int16(5) != 5

    def test_usable_in_sets(self):
        assert len({Int16(5), Int16(5), Int32(5)}) == 2


class TestCodec:
    @pytest.mark.parametrize("cls,value", [
        (Int16, -1234),
        (Int64, 1 << 40),
        (UInt8, 255),
        (Bool, True),
        (Float64, 2.5),
    ])
    def test_pack_unpack(self, cls, value):
        assert cls.unpack(cls(value).pack()) == cls(value)

    def test_float32_canonicalizes(self):
        x = Float32(0.1)
        # 0.1 is not binary32-representable; the stored value is the nearest.
        assert x.value != 0.1
        assert Float32.unpack(x.pack()) == x

    def test_float32_overflow_rejected(self):
        with pytest.raises(LossyMappingError):
            Float32(1e39)


class TestChar:
    def test_roundtrip(self):
        assert Char.unpack(Char("λ").pack()).value == "λ"

    def test_multichar_rejected(self):
        with pytest.raises(LossyMappingError):
            Char("ab")

    def test_non_string_rejected(self):
        with pytest.raises(LossyMappingError):
            Char(65)

    def test_invalid_code_point_rejected(self):
        with pytest.raises(DecodingError):
            Char.unpack((0x110000).to_bytes(4, "big"))


class TestStringBlob:
    def test_string_roundtrip(self):
        s = String("héllo wörld")
        assert String.unpack(s.pack()).value == "héllo wörld"

    def test_string_rejects_bytes(self):
        with pytest.raises(LossyMappingError):
            String(b"bytes")

    def test_string_invalid_utf8(self):
        with pytest.raises(DecodingError):
            String.unpack(b"\xff\xfe")

    def test_blob_roundtrip(self):
        b = Blob(b"\x00\x01\xff")
        assert Blob.unpack(b.pack()).value == b"\x00\x01\xff"

    def test_blob_accepts_bytearray(self):
        assert Blob(bytearray(b"xy")).value == b"xy"

    def test_blob_rejects_str(self):
        with pytest.raises(LossyMappingError):
            Blob("text")


def test_scalar_types_table_is_complete():
    for name, cls in SCALAR_TYPES.items():
        assert isinstance(name, str) and isinstance(cls, type)
    # Every table entry constructs something sensible.
    samples = {
        "int8": 1, "int16": 1, "int32": 1, "int64": 1, "int128": 1,
        "uint8": 1, "uint16": 1, "uint32": 1, "uint64": 1, "uint128": 1,
        "bool": True, "float32": 1.0, "float64": 1.0,
        "char": "a", "string": "s", "blob": b"b",
    }
    for name, value in samples.items():
        assert SCALAR_TYPES[name](value).value is not None
