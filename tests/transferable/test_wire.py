"""Unit tests for the TLV wire codec: framing, validation, fuzz resistance."""

import dataclasses

import pytest

from repro.errors import DecodingError
from repro.transferable.registry import TransferableRegistry
from repro.transferable.scalars import Float32, Int16, Int64, String
from repro.transferable.wire import MAGIC, decode, encode, encoded_size


class TestRoundtrip:
    @pytest.mark.parametrize(
        "obj",
        [
            None,
            True,
            0,
            -1,
            1 << 100,
            -(1 << 100),
            3.5,
            "unicode λ ☃",
            b"\x00\xff",
            [1, [2, [3]]],
            {"k": (1, 2), "j": {3: 4}},
            {Int16(1), Int16(2)},
            Int64(-5),
            Float32(1.5),
            String("wrapped"),
        ],
    )
    def test_values(self, obj):
        assert decode(encode(obj)) == obj

    def test_cycle_over_the_wire(self):
        lst: list = ["head"]
        lst.append(lst)
        result = decode(encode(lst))
        assert result[1] is result

    def test_struct_over_the_wire(self):
        registry = TransferableRegistry()

        @dataclasses.dataclass
        class Task:
            name: str
            deps: list

        registry.register_struct(Task)
        t = Task("build", [Task("fetch", [])])
        out = decode(encode(t, registry=registry), registry=registry)
        assert out.name == "build" and out.deps[0].name == "fetch"

    def test_encoded_size_matches(self):
        obj = {"payload": list(range(50))}
        assert encoded_size(obj) == len(encode(obj))

    def test_deterministic_encoding(self):
        obj = {"a": [1, 2], "b": {3, 4}}
        assert encode(obj) == encode(obj)


class TestValidation:
    def test_magic(self):
        assert encode(None)[:2] == MAGIC

    def test_bad_magic_rejected(self):
        with pytest.raises(DecodingError, match="magic"):
            decode(b"XX" + encode(1)[2:])

    def test_bad_version_rejected(self):
        data = bytearray(encode(1))
        data[2] = 99
        with pytest.raises(DecodingError, match="version"):
            decode(bytes(data))

    def test_truncated_rejected(self):
        data = encode([1, 2, 3])
        with pytest.raises(DecodingError):
            decode(data[:-2])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(DecodingError, match="trailing"):
            decode(encode(1) + b"\x00")

    def test_out_of_range_child_rejected(self):
        # A list node claiming a child beyond the node table.
        data = bytearray(encode([1]))
        # Corrupt: child id bytes of the list node point past the table.
        # Find the last 4 bytes before the int node... simpler: flip the
        # root to reference junk by corrupting count field is messy, so we
        # corrupt a child id directly by brute force and expect *some*
        # DecodingError rather than silence.
        corrupted = 0
        for i in range(11, len(data)):
            mutated = bytearray(data)
            mutated[i] ^= 0xFF
            try:
                decode(bytes(mutated))
            except DecodingError:
                corrupted += 1
            except Exception as exc:  # noqa: BLE001
                pytest.fail(f"non-DecodingError leaked: {type(exc).__name__}: {exc}")
        assert corrupted > 0

    def test_empty_input_rejected(self):
        with pytest.raises(DecodingError):
            decode(b"")


class TestSizes:
    def test_small_int_is_compact(self):
        # magic(2)+ver(1)+count(4)+root(4) + tag(1)+len(4)+payload(1) = 17
        assert len(encode(7)) == 17

    def test_shared_structure_smaller_than_copies(self):
        shared = list(range(100))
        aliased = [shared, shared]
        copied = [list(range(100)), list(range(100))]
        assert len(encode(aliased)) < len(encode(copied))
