"""Unit tests for the transferable struct registry."""

import dataclasses

import pytest

from repro.errors import EncodingError, UnknownTransferableError
from repro.transferable.registry import TransferableRegistry, transferable_struct
from repro.transferable.wire import decode, encode


class TestRegistration:
    def test_dataclass_fields_inferred(self):
        registry = TransferableRegistry()

        @dataclasses.dataclass
        class Pair:
            a: int
            b: int

        registry.register_struct(Pair)
        info = registry.lookup_name("Pair")
        assert info.fields == ("a", "b")

    def test_slots_fields_inferred(self):
        registry = TransferableRegistry()

        class Slotted:
            __slots__ = ("x", "y")

        registry.register_struct(Slotted)
        assert registry.lookup_name("Slotted").fields == ("x", "y")

    def test_explicit_fields(self):
        registry = TransferableRegistry()

        class Loose:
            pass

        registry.register_struct(Loose, fields=("p", "q"))
        assert registry.lookup_name("Loose").fields == ("p", "q")

    def test_uninferrable_fields_rejected(self):
        registry = TransferableRegistry()

        class Opaque:
            pass

        with pytest.raises(EncodingError, match="cannot infer"):
            registry.register_struct(Opaque)

    def test_custom_wire_name(self):
        registry = TransferableRegistry()

        @dataclasses.dataclass
        class V:
            x: int

        registry.register_struct(V, name="app.Vector")
        assert registry.lookup_name("app.Vector").cls is V

    def test_name_collision_rejected(self):
        registry = TransferableRegistry()

        @dataclasses.dataclass
        class A:
            x: int

        @dataclasses.dataclass
        class B:
            x: int

        registry.register_struct(A, name="N")
        with pytest.raises(EncodingError, match="already registered"):
            registry.register_struct(B, name="N")

    def test_reregistering_same_class_is_idempotent(self):
        registry = TransferableRegistry()

        @dataclasses.dataclass
        class C:
            x: int

        registry.register_struct(C)
        registry.register_struct(C)  # no error

    def test_unknown_name_lookup(self):
        with pytest.raises(UnknownTransferableError):
            TransferableRegistry().lookup_name("ghost")

    def test_lookup_class_returns_none_for_unknown(self):
        assert TransferableRegistry().lookup_class(int) is None


class TestDecorator:
    def test_decorator_registers_in_given_registry(self):
        registry = TransferableRegistry()

        @transferable_struct(registry=registry)
        @dataclasses.dataclass
        class D:
            v: int

        assert decode(encode(D(3), registry=registry), registry=registry).v == 3

    def test_frozen_dataclass_roundtrip(self):
        registry = TransferableRegistry()

        @transferable_struct(registry=registry)
        @dataclasses.dataclass(frozen=True)
        class Frozen:
            v: int

        out = decode(encode(Frozen(9), registry=registry), registry=registry)
        assert out == Frozen(9)

    def test_decode_with_missing_registration_fails(self):
        registry = TransferableRegistry()

        @dataclasses.dataclass
        class E:
            v: int

        registry.register_struct(E)
        data = encode(E(1), registry=registry)
        with pytest.raises(UnknownTransferableError):
            decode(data, registry=TransferableRegistry())
