"""Unit tests for the absolute data domains (paper section 3.1.3)."""

import math

import pytest

from repro.errors import DecodingError, LossyMappingError
from repro.transferable.domains import DOMAINS, domain_for


class TestIntDomains:
    @pytest.mark.parametrize(
        "name,lo,hi",
        [
            ("int8", -128, 127),
            ("int16", -(1 << 15), (1 << 15) - 1),
            ("int32", -(1 << 31), (1 << 31) - 1),
            ("int64", -(1 << 63), (1 << 63) - 1),
            ("uint8", 0, 255),
            ("uint16", 0, (1 << 16) - 1),
            ("uint32", 0, (1 << 32) - 1),
            ("uint64", 0, (1 << 64) - 1),
        ],
    )
    def test_bounds(self, name, lo, hi):
        d = DOMAINS[name]
        assert d.contains(lo) and d.contains(hi)
        assert not d.contains(lo - 1)
        assert not d.contains(hi + 1)

    def test_pack_roundtrip_extremes(self):
        d = DOMAINS["int16"]
        for v in (-32768, -1, 0, 1, 32767):
            assert d.unpack(d.pack(v)) == v

    def test_alpha_to_486_lossy_mapping_rejected(self):
        """The paper's motivating example: a 64-bit value > 16 bits."""
        big = 70_000
        assert DOMAINS["int64"].contains(big)
        with pytest.raises(LossyMappingError):
            DOMAINS["int16"].pack(big)

    def test_negative_rejected_by_unsigned(self):
        with pytest.raises(LossyMappingError):
            DOMAINS["uint32"].pack(-1)

    def test_bool_not_an_int(self):
        assert not DOMAINS["int8"].contains(True)

    def test_non_int_rejected(self):
        assert not DOMAINS["int32"].contains("5")
        assert not DOMAINS["int32"].contains(5.0)

    def test_unpack_wrong_width(self):
        with pytest.raises(DecodingError):
            DOMAINS["int32"].unpack(b"\x00\x01")

    def test_width_bytes(self):
        assert len(DOMAINS["int64"].pack(0)) == 8
        assert len(DOMAINS["uint128"].pack(0)) == 16

    def test_big_endian_encoding(self):
        assert DOMAINS["uint16"].pack(0x0102) == b"\x01\x02"

    def test_int128(self):
        d = DOMAINS["int128"]
        v = (1 << 100) + 12345
        assert d.unpack(d.pack(v)) == v


class TestFloatDomains:
    def test_float64_roundtrip(self):
        d = DOMAINS["float64"]
        for v in (0.0, -1.5, 3.141592653589793, 1e300, -1e-300):
            assert d.unpack(d.pack(v)) == v

    def test_float32_overflow_is_lossy(self):
        with pytest.raises(LossyMappingError):
            DOMAINS["float32"].pack(1e39)

    def test_float32_max_finite_ok(self):
        d = DOMAINS["float32"]
        v = 3.4e38  # near but below binary32 max
        out = d.unpack(d.pack(v))
        assert math.isfinite(out)

    def test_float_specials_roundtrip(self):
        d = DOMAINS["float64"]
        assert math.isinf(d.unpack(d.pack(math.inf)))
        assert math.isnan(d.unpack(d.pack(math.nan)))

    def test_int_is_not_float(self):
        assert not DOMAINS["float64"].contains(3)

    def test_unpack_wrong_width(self):
        with pytest.raises(DecodingError):
            DOMAINS["float32"].unpack(b"\x00" * 8)


class TestBoolDomain:
    def test_roundtrip(self):
        d = DOMAINS["bool"]
        assert d.unpack(d.pack(True)) is True
        assert d.unpack(d.pack(False)) is False

    def test_int_not_bool(self):
        assert not DOMAINS["bool"].contains(1)

    def test_bad_encoding_rejected(self):
        with pytest.raises(DecodingError):
            DOMAINS["bool"].unpack(b"\x02")


class TestLookup:
    def test_domain_for_known(self):
        assert domain_for("int32").name == "int32"

    def test_domain_for_unknown(self):
        with pytest.raises(KeyError):
            domain_for("int7")

    def test_all_domains_have_distinct_names(self):
        assert len(DOMAINS) == len({d.name for d in DOMAINS.values()})
