"""Unit tests for spanning-tree linearization (cycles, aliasing, strictness)."""

import dataclasses

import pytest

from repro.errors import DecodingError, EncodingError
from repro.transferable.graph import Delinearizer, Linearizer, NodeKind
from repro.transferable.registry import TransferableRegistry
from repro.transferable.scalars import Int16, Int32


def roundtrip(obj, registry=None):
    graph = Linearizer(registry).linearize(obj)
    return Delinearizer(registry).delinearize(graph)


class TestLeaves:
    @pytest.mark.parametrize("value", [None, True, False, 0, -17, 1 << 80, 2.5, "s", b"b"])
    def test_roundtrip(self, value):
        assert roundtrip(value) == value

    def test_scalar_roundtrip(self):
        assert roundtrip(Int16(99)) == Int16(99)

    def test_bool_is_not_int_node(self):
        graph = Linearizer().linearize(True)
        assert graph.nodes[graph.root].kind is NodeKind.NATIVE_BOOL


class TestContainers:
    def test_nested(self):
        obj = {"a": [1, (2, 3)], "b": {4, 5}, "c": frozenset({6})}
        assert roundtrip(obj) == obj

    def test_empty_containers(self):
        assert roundtrip([]) == []
        assert roundtrip({}) == {}
        assert roundtrip(()) == ()
        assert roundtrip(set()) == set()

    def test_dict_with_tuple_keys(self):
        obj = {(1, 2): "x", (3, 4): "y"}
        assert roundtrip(obj) == obj

    def test_scalar_dict_keys(self):
        obj = {Int32(1): "one"}
        assert roundtrip(obj) == obj


class TestSharingAndCycles:
    def test_shared_substructure_preserves_aliasing(self):
        inner = [1, 2]
        outer = [inner, inner]
        result = roundtrip(outer)
        assert result == outer
        assert result[0] is result[1]

    def test_self_referential_list(self):
        lst: list = [1]
        lst.append(lst)
        result = roundtrip(lst)
        assert result[0] == 1
        assert result[1] is result

    def test_cycle_through_dict(self):
        d: dict = {"x": 1}
        d["self"] = d
        result = roundtrip(d)
        assert result["self"] is result

    def test_mutual_cycle(self):
        a: list = ["a"]
        b: list = ["b", a]
        a.append(b)
        ra = roundtrip(a)
        assert ra[1][1] is ra

    def test_deep_nesting_linear_nodes(self):
        obj: object = 0
        for _ in range(200):
            obj = [obj]
        graph = Linearizer().linearize(obj)
        assert len(graph) == 201
        assert roundtrip(obj) == obj

    def test_diamond_sharing_node_count(self):
        """Shared nodes are encoded once (spanning tree, not a copy tree)."""
        shared = [1, 2, 3]
        obj = [shared, shared, shared]
        graph = Linearizer().linearize(obj)
        # 1 outer + 1 shared list + 3 ints.
        assert len(graph) == 5


class TestStructs:
    def test_registered_struct_roundtrip(self):
        registry = TransferableRegistry()

        @dataclasses.dataclass
        class Point:
            x: int
            y: int

        registry.register_struct(Point)
        p = roundtrip(Point(1, 2), registry)
        assert isinstance(p, Point) and (p.x, p.y) == (1, 2)

    def test_self_referential_struct(self):
        registry = TransferableRegistry()

        class LinkNode:
            _transferable_fields_ = ("value", "next")

            def __init__(self, value):
                self.value = value
                self.next = None

        registry.register_struct(LinkNode)
        node = LinkNode(7)
        node.next = node  # cycle through the struct
        result = roundtrip(node, registry)
        assert result.value == 7
        assert result.next is result

    def test_unregistered_type_rejected(self):
        class Mystery:
            pass

        with pytest.raises(EncodingError, match="not transferable"):
            Linearizer(TransferableRegistry()).linearize(Mystery())


class TestStrictDomains:
    def test_bare_int_rejected(self):
        with pytest.raises(EncodingError, match="strict domains"):
            Linearizer(strict_domains=True).linearize(42)

    def test_bare_float_rejected(self):
        with pytest.raises(EncodingError, match="strict"):
            Linearizer(strict_domains=True).linearize([1.5])

    def test_wrapped_scalars_accepted(self):
        graph = Linearizer(strict_domains=True).linearize([Int32(42), "text", None])
        assert len(graph) == 4

    def test_bool_allowed_strict(self):
        # bool is a 2-valued domain, identical on every machine.
        Linearizer(strict_domains=True).linearize(True)


class TestDecodingValidation:
    def test_bad_root_rejected(self):
        graph = Linearizer().linearize([1, 2])
        graph.root = 99
        with pytest.raises(DecodingError):
            Delinearizer().delinearize(graph)

    def test_immutable_cycle_rejected(self):
        """A tuple->tuple cycle can't exist in a real heap; decode rejects it."""
        from repro.transferable.graph import LinearGraph, Node

        graph = LinearGraph(
            nodes=[Node(NodeKind.TUPLE, [0])],  # tuple containing itself
            root=0,
        )
        with pytest.raises(DecodingError, match="cycle through immutable"):
            Delinearizer().delinearize(graph)

    def test_tuple_into_mutable_cycle_ok(self):
        """A tuple inside a list cycle IS constructible and must decode."""
        lst: list = []
        tup = (1, lst)
        lst.append(tup)
        result = roundtrip(lst)
        assert result[0][1] is result
