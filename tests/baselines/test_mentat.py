"""Unit tests for the Mentat macro-dataflow baseline."""

import threading
import time

import pytest

from repro.baselines.mentat import MentatObject, MentatRuntime
from repro.errors import MemoError


class Adder(MentatObject):
    def add(self, a, b):
        return a + b

    def slow_identity(self, x):
        time.sleep(0.05)
        return x

    def boom(self):
        raise ValueError("method failure")


@pytest.fixture
def runtime():
    return MentatRuntime()


class TestInvocation:
    def test_async_result(self, runtime):
        adder = Adder(runtime)
        future = adder.invoke("add", 2, 3)
        assert future.result(timeout=5) == 5

    def test_invocation_is_asynchronous(self, runtime):
        adder = Adder(runtime)
        start = time.monotonic()
        future = adder.invoke("slow_identity", "x")
        assert time.monotonic() - start < 0.04  # returned before completion
        assert future.result(timeout=5) == "x"

    def test_unknown_method(self, runtime):
        with pytest.raises(MemoError):
            Adder(runtime).invoke("subtract", 1, 2)

    def test_method_error_surfaces_at_result(self, runtime):
        future = Adder(runtime).invoke("boom")
        with pytest.raises(ValueError, match="method failure"):
            future.result(timeout=5)

    def test_result_timeout(self, runtime):
        adder = Adder(runtime)
        blocked = adder.invoke("slow_identity", adder.invoke("slow_identity", 1))
        with pytest.raises(TimeoutError):
            blocked.result(timeout=0.001)
        assert blocked.result(timeout=5) == 1


class TestMacroDataflow:
    def test_future_arguments_chain(self, runtime):
        adder = Adder(runtime)
        f1 = adder.invoke("add", 1, 2)
        f2 = adder.invoke("add", f1, 10)
        f3 = adder.invoke("add", f2, f1)
        assert f3.result(timeout=5) == 16
        assert runtime.invocations == 3

    def test_diamond_dependency(self, runtime):
        adder = Adder(runtime)
        src = adder.invoke("add", 1, 1)
        left = adder.invoke("add", src, 10)
        right = adder.invoke("add", src, 100)
        join = adder.invoke("add", left, right)
        assert join.result(timeout=5) == (2 + 10) + (2 + 100)

    def test_independent_invocations_overlap(self, runtime):
        """Coarse-grain parallelism: two objects run concurrently."""
        a, b = Adder(runtime), Adder(runtime)
        start = time.monotonic()
        fa = a.invoke("slow_identity", "a")
        fb = b.invoke("slow_identity", "b")
        assert fa.result(timeout=5) == "a"
        assert fb.result(timeout=5) == "b"
        # Two 50 ms methods overlapped: well under 100 ms total.
        assert time.monotonic() - start < 0.095

    def test_one_object_serializes_methods(self, runtime):
        """A Mentat object processes one method at a time."""
        active = {"n": 0, "max": 0}
        guard = threading.Lock()

        class Probe(MentatObject):
            def probe(self):
                with guard:
                    active["n"] += 1
                    active["max"] = max(active["max"], active["n"])
                time.sleep(0.01)
                with guard:
                    active["n"] -= 1

        probe = Probe(runtime)
        futures = [probe.invoke("probe") for _ in range(5)]
        for f in futures:
            f.result(timeout=5)
        assert active["max"] == 1


class TestPaperComparison:
    def test_no_distribution_in_time(self, runtime):
        """The gap D-Memo fills: a Mentat result reaches only the future's
        holder — drop the future and the value is unreachable, unlike a
        folder-resident memo."""
        adder = Adder(runtime)
        future = adder.invoke("add", 20, 22)
        future.result(timeout=5)
        del future
        # No name, no folder, no way to re-fetch 42: nothing to assert
        # except that the runtime holds no registry of results.
        assert not hasattr(runtime, "results")
