"""Unit tests for the PVM message-passing baseline."""

import pytest

from repro.baselines.pvm import PVM, WILDCARD
from repro.errors import MemoError


@pytest.fixture
def pvm():
    vm = PVM()
    vm.host_mailbox()
    yield vm
    vm.join_all(timeout=5)


class TestSpawn:
    def test_task_result(self, pvm):
        h = pvm.spawn(lambda vm, tid: tid * 10)
        assert h.join(5)
        assert h.result() == h.tid * 10

    def test_task_error_surfaces(self, pvm):
        def bad(vm, tid):
            raise ValueError("task bug")

        h = pvm.spawn(bad)
        h.join(5)
        with pytest.raises(ValueError, match="task bug"):
            h.result()

    def test_distinct_tids(self, pvm):
        tids = {pvm.spawn(lambda vm, tid: None).tid for _ in range(5)}
        assert len(tids) == 5

    def test_mytid_in_task(self, pvm):
        h = pvm.spawn(lambda vm, tid: vm.mytid() == tid)
        h.join(5)
        assert h.result() is True

    def test_host_is_tid_zero(self, pvm):
        assert pvm.mytid() == 0


class TestMessaging:
    def test_send_recv(self, pvm):
        def echo(vm, tid):
            src, tag, data = vm.recv(tag=1)
            vm.send(src, 2, data.upper())

        h = pvm.spawn(echo)
        pvm.send(h.tid, 1, "hello")
        assert pvm.recv(tag=2, timeout=5) == (h.tid, 2, "HELLO")

    def test_tag_selection_queues_nonmatching(self, pvm):
        def sender(vm, tid):
            vm.send(0, 5, "five")
            vm.send(0, 6, "six")

        pvm.spawn(sender).join(5)
        # Ask for tag 6 first; the tag-5 message must not be lost.
        assert pvm.recv(tag=6, timeout=5)[2] == "six"
        assert pvm.recv(tag=5, timeout=5)[2] == "five"

    def test_source_selection(self, pvm):
        h1 = pvm.spawn(lambda vm, tid: vm.send(0, 1, "one"))
        h2 = pvm.spawn(lambda vm, tid: vm.send(0, 1, "two"))
        h1.join(5)
        h2.join(5)
        assert pvm.recv(src=h2.tid, timeout=5)[2] == "two"
        assert pvm.recv(src=h1.tid, timeout=5)[2] == "one"

    def test_wildcard_recv(self, pvm):
        h = pvm.spawn(lambda vm, tid: vm.send(0, 9, "any"))
        h.join(5)
        src, tag, data = pvm.recv(WILDCARD, WILDCARD, timeout=5)
        assert (src, tag, data) == (h.tid, 9, "any")

    def test_send_to_unknown_tid(self, pvm):
        with pytest.raises(MemoError, match="no task"):
            pvm.send(999, 1, "lost")

    def test_recv_timeout(self, pvm):
        with pytest.raises(TimeoutError):
            pvm.recv(tag=42, timeout=0.05)

    def test_nrecv_none_when_empty(self, pvm):
        assert pvm.nrecv(tag=13) is None

    def test_mcast(self, pvm):
        def collector(vm, tid):
            return vm.recv(tag=3, timeout=5)[2]

        handles = [pvm.spawn(collector) for _ in range(3)]
        pvm.mcast([h.tid for h in handles], 3, "broadcasted")
        for h in handles:
            h.join(5)
            assert h.result() == "broadcasted"

    def test_messages_sent_counter(self, pvm):
        h = pvm.spawn(lambda vm, tid: vm.recv(tag=1, timeout=5))
        pvm.send(h.tid, 1, "x")
        h.join(5)
        assert pvm.messages_sent == 1


class TestRingWorkload:
    def test_token_ring(self, pvm):
        """The classic PVM demo: pass a token around a ring of tasks."""
        n = 4
        handles = []

        def ring_node(vm, tid):
            src, tag, token = vm.recv(tag=10, timeout=10)
            nxt = tag_map[tid]
            vm.send(nxt, 10 if nxt != 0 else 11, token + 1)
            return token

        for _ in range(n):
            handles.append(pvm.spawn(ring_node))
        tag_map = {
            handles[i].tid: (handles[i + 1].tid if i + 1 < n else 0)
            for i in range(n)
        }
        pvm.send(handles[0].tid, 10, 0)
        src, tag, token = pvm.recv(tag=11, timeout=10)
        assert token == n
        for i, h in enumerate(handles):
            h.join(5)
            assert h.result() == i
