"""Unit tests for the Linda tuple-space baseline."""

import threading
import time

import pytest

from repro.baselines.linda import ANY, Formal, TupleSpace
from repro.errors import MemoError


@pytest.fixture
def ts():
    space = TupleSpace()
    yield space
    space.close()


class TestOutIn:
    def test_out_in_exact(self, ts):
        ts.out("point", 1, 2)
        assert ts.in_("point", 1, 2) == ("point", 1, 2)

    def test_in_removes(self, ts):
        ts.out("x", 1)
        ts.in_("x", 1)
        assert ts.inp("x", 1) is None

    def test_rd_does_not_remove(self, ts):
        ts.out("x", 1)
        assert ts.rd("x", 1) == ("x", 1)
        assert ts.inp("x", 1) == ("x", 1)

    def test_empty_tuple_rejected(self, ts):
        with pytest.raises(MemoError):
            ts.out()

    def test_in_blocks_until_out(self, ts):
        out = []
        t = threading.Thread(target=lambda: out.append(ts.in_("later", ANY)))
        t.start()
        time.sleep(0.05)
        assert out == []
        ts.out("later", 42)
        t.join(timeout=5)
        assert out == [("later", 42)]

    def test_in_timeout(self, ts):
        with pytest.raises(TimeoutError):
            ts.in_("never", timeout=0.05)


class TestMatching:
    def test_formal_by_type(self, ts):
        ts.out("job", 7, "payload")
        assert ts.in_("job", Formal(int), Formal(str)) == ("job", 7, "payload")

    def test_formal_type_mismatch(self, ts):
        ts.out("job", "not-an-int")
        assert ts.inp("job", Formal(int)) is None

    def test_bool_not_int_formal(self, ts):
        ts.out("flag", True)
        assert ts.inp("flag", Formal(int)) is None
        assert ts.inp("flag", Formal(bool)) == ("flag", True)

    def test_wildcard(self, ts):
        ts.out("anything", [1, 2], {"k": 1})
        assert ts.in_("anything", ANY, ANY) == ("anything", [1, 2], {"k": 1})

    def test_arity_must_match(self, ts):
        ts.out("pair", 1, 2)
        assert ts.inp("pair", ANY) is None
        assert ts.inp("pair", ANY, ANY, ANY) is None

    def test_actual_values_matched_by_equality(self, ts):
        ts.out("v", (1, 2))
        assert ts.inp("v", (1, 2)) == ("v", (1, 2))

    def test_first_match_semantics_with_multiple(self, ts):
        ts.out("t", 1)
        ts.out("t", 2)
        got = {ts.in_("t", ANY)[1], ts.in_("t", ANY)[1]}
        assert got == {1, 2}


class TestEval:
    def test_live_tuple_becomes_passive(self, ts):
        ts.eval(lambda a, b: ("sum", a + b), 2, 3)
        assert ts.in_("sum", ANY, timeout=5) == ("sum", 5)

    def test_non_tuple_result_wrapped(self, ts):
        ts.eval(lambda: "bare")
        assert ts.in_("bare", timeout=5) == ("bare",)

    def test_join_evals(self, ts):
        ts.eval(lambda: ("done",))
        ts.join_evals(timeout=5)
        assert ts.rdp("done") == ("done",)


class TestMetrics:
    def test_scan_count_grows_with_space(self, ts):
        for i in range(100):
            ts.out("filler", i)
        ts.out("needle", -1)
        before = ts.scan_count
        ts.rd("needle", ANY)
        assert ts.scan_count - before >= 100  # linear associative scan

    def test_size(self, ts):
        ts.out("a", 1)
        ts.out("b", 2)
        assert ts.size() == 2

    def test_closed_space_rejects(self):
        space = TupleSpace()
        space.close()
        with pytest.raises(MemoError):
            space.out("x", 1)
