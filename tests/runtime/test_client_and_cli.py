"""Unit tests for the MemoClient plumbing and the `memo` CLI entry point."""

import sys
import textwrap
import types

import pytest

from repro.core.keys import Key, Symbol
from repro.errors import MemoError
from repro.network.protocol import GetRequest, PutRequest, StatsRequest
from repro.runtime.launcher import main
from repro.runtime.program import ProgramRegistry


def fname(cluster, i=0):
    from repro.core.keys import FolderName

    return FolderName("test", Key(Symbol("c"), (i,)))


class TestMemoClient:
    def test_request_reply(self, one_host_cluster):
        client = one_host_cluster.client_for("solo", "c")
        reply = client.request(StatsRequest())
        assert reply.ok and reply.stats
        client.close()

    def test_post_defers_ack(self, one_host_cluster):
        client = one_host_cluster.client_for("solo", "c")
        client.post(PutRequest(fname(one_host_cluster), b"", origin="c"))
        assert client.pending_acks == 1
        client.flush()
        assert client.pending_acks == 0
        client.close()

    def test_request_drains_pending_first(self, one_host_cluster):
        from repro.transferable.wire import encode

        client = one_host_cluster.client_for("solo", "c")
        for i in range(5):
            client.post(
                PutRequest(fname(one_host_cluster), encode(i), origin="c")
            )
        reply = client.request(GetRequest(fname(one_host_cluster), mode="skip"))
        assert reply.found  # all five puts landed before the get
        assert client.pending_acks == 0
        client.close()

    def test_deferred_error_raised_once(self, one_host_cluster):
        from repro.core.keys import FolderName

        client = one_host_cluster.client_for("solo", "c")
        bad = FolderName("ghost-app", Key(Symbol("x")))
        client.post(PutRequest(bad, b"", origin="c"))
        with pytest.raises(MemoError, match="asynchronous put failed"):
            client.flush()
        # The error is consumed; the client remains usable.
        assert client.request(StatsRequest()).ok
        client.close()

    def test_put_many_pipelines_batch(self, one_host_cluster):
        from repro.transferable.wire import encode

        client = one_host_cluster.client_for("solo", "c")
        batch = [
            PutRequest(fname(one_host_cluster, i), encode(i), origin="c")
            for i in range(8)
        ]
        client.put_many(batch)
        assert client.pending_acks == 8
        client.flush()
        assert client.pending_acks == 0
        for i in range(8):
            reply = client.request(
                GetRequest(fname(one_host_cluster, i), mode="skip")
            )
            assert reply.ok and reply.found
        client.close()

    def test_put_many_empty_batch_is_noop(self, one_host_cluster):
        client = one_host_cluster.client_for("solo", "c")
        client.put_many([])
        assert client.pending_acks == 0
        client.close()

    def test_context_manager(self, one_host_cluster):
        with one_host_cluster.client_for("solo", "c") as client:
            assert client.request(StatsRequest()).ok


class TestCLI:
    @pytest.fixture
    def programs_module(self):
        """A synthetic importable module exposing a `registry`."""
        module = types.ModuleType("cli_test_programs")
        registry = ProgramRegistry()

        @registry.register("boss")
        def boss(memo, ctx):
            jar = memo.create_symbol("jar")
            memo.put(jar(0), 21, wait=True)
            return memo.get(jar(0)) * 2

        @registry.register("worker")
        def worker(memo, ctx):
            return "idle"

        module.registry = registry
        sys.modules["cli_test_programs"] = module
        yield "cli_test_programs"
        del sys.modules["cli_test_programs"]

    @pytest.fixture
    def adf_file(self, tmp_path):
        path = tmp_path / "app.adf"
        path.write_text(
            textwrap.dedent(
                """
                APP cliapp
                HOSTS
                only 1 sun4 1
                FOLDERS
                0 only
                PROCESSES
                0 boss only
                1 worker only
                """
            )
        )
        return str(path)

    def test_cli_runs_application(self, capsys, adf_file, programs_module):
        rc = main([adf_file, "--programs", programs_module])
        assert rc == 0
        out = capsys.readouterr().out
        assert "process 0: 42" in out
        assert "process 1: 'idle'" in out

    def test_cli_rejects_module_without_registry(self, capsys, adf_file):
        module = types.ModuleType("cli_bad_module")
        sys.modules["cli_bad_module"] = module
        try:
            rc = main([adf_file, "--programs", "cli_bad_module"])
            assert rc == 2
            assert "registry" in capsys.readouterr().err
        finally:
            del sys.modules["cli_bad_module"]

    def test_cli_missing_adf_file(self, programs_module):
        with pytest.raises(FileNotFoundError):
            main(["/does/not/exist.adf", "--programs", programs_module])
