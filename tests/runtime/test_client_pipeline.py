"""MemoClient demultiplexing and deferred-ack accounting.

The pipelined client tags every request with a correlation id and matches
replies by id, so the server is free to answer out of order; posted-put
acknowledgements that die with a connection are *counted* — accurately,
across repeated losses — and surface as exactly one MemoError.
"""

import pytest

from repro import Cluster, system_default_adf
from repro.core.keys import FolderName, Key, Symbol
from repro.errors import MemoError
from repro.network.protocol import GetRequest, PutRequest, StatsRequest
from repro.transferable.wire import encode


@pytest.fixture
def cluster():
    adf = system_default_adf(["solo"], app="cp")
    with Cluster(adf, idle_timeout=0.5) as c:
        c.register()
        yield c


def folder(i=0):
    return FolderName("cp", Key(Symbol("k"), (i,)))


class TestDemux:
    def test_request_matched_by_id_with_posts_in_flight(self, cluster):
        client = cluster.client_for("solo", origin="d")
        for i in range(10):
            client.post(PutRequest(folder=folder(i), payload=encode(i)))
        # The request drains the 10 acks first, then matches its own id.
        reply = client.request(StatsRequest(origin="d"), timeout=5.0)
        assert reply.ok and reply.stats
        assert client.pending_acks == 0
        client.close()

    def test_sync_reads_see_pipelined_writes(self, cluster):
        memo = cluster.memo_api("solo", "cp")
        memo.put_many((Key(Symbol("rw"), (i,)), i) for i in range(50))
        # No explicit flush: request() drains pending acks first, so the
        # read-your-writes guarantee holds across the pipelined batch.
        assert memo.get(Key(Symbol("rw"), (7,))) == 7

    def test_stale_frames_are_skipped_not_mismatched(self, cluster):
        client = cluster.client_for("solo", origin="t")
        with pytest.raises(TimeoutError):
            client.request(GetRequest(folder(99), mode="get"), timeout=0.2)
        # Satisfy the ghost get so its reply is produced somewhere.
        feeder = cluster.client_for("solo", origin="f")
        feeder.request(PutRequest(folder=folder(99), payload=encode("x")))
        # The reconnected client's next request gets its own reply.
        reply = client.request(StatsRequest(origin="t"), timeout=5.0)
        assert reply.ok and reply.stats
        client.close()
        feeder.close()


class TestLossAccounting:
    def test_single_loss_reports_count_once(self, cluster):
        client = cluster.client_for("solo", origin="l")
        client.post(PutRequest(folder=folder(1), payload=encode(1)))
        client.post(PutRequest(folder=folder(2), payload=encode(2)))
        with client._lock:
            client._discard_connection_locked()
        with pytest.raises(MemoError, match="2 unacknowledged"):
            client.flush()
        # Raised exactly once: the books are clean afterwards.
        client.flush()
        assert client.pending_acks == 0
        client.close()

    def test_repeated_losses_accumulate_accurately(self, cluster):
        """A second loss before the first was reported must add, not reset.

        The old accounting zeroed the counter while composing the first
        error, so a reconnect could silently forget unacknowledged puts.
        """
        client = cluster.client_for("solo", origin="l2")
        client.post(PutRequest(folder=folder(1), payload=encode(1)))
        client.post(PutRequest(folder=folder(2), payload=encode(2)))
        with client._lock:
            client._discard_connection_locked()
            client._conn = client._transport.connect(client.server_address)
        client.post(PutRequest(folder=folder(3), payload=encode(3)))
        with client._lock:
            client._discard_connection_locked()
        with pytest.raises(MemoError, match="3 unacknowledged"):
            client.flush()
        client.flush()  # exactly once
        client.close()

    def test_server_error_and_loss_surface_together_once(self, cluster):
        client = cluster.client_for("solo", origin="l3")
        # An async put to an unregistered app draws an error reply.
        client.post(
            PutRequest(folder=FolderName("ghost-app", Key(Symbol("x"))), payload=encode(1))
        )
        with pytest.raises(MemoError, match="asynchronous put failed"):
            client.flush()
        client.post(PutRequest(folder=folder(5), payload=encode(5)))
        with client._lock:
            client._discard_connection_locked()
        with pytest.raises(MemoError, match="1 unacknowledged"):
            client.flush()
        client.flush()
        client.close()

    def test_put_many_reconnect_midstream_keeps_books(self, cluster):
        """A connection cut under put_many resends the unsent burst and
        counts the dead wire's acks, still raising exactly once."""
        client = cluster.client_for("solo", origin="l4")
        client.post(PutRequest(folder=folder(0), payload=encode(0)))
        with client._lock:
            client._conn.close()  # cut the wire; reconnect happens lazily
        client.put_many(
            PutRequest(folder=folder(i), payload=encode(i)) for i in range(1, 70)
        )
        with pytest.raises(MemoError, match="1 unacknowledged"):
            client.flush()
        assert client.pending_acks == 0
        # The resent burst landed: the memos are all there.
        from repro.core.api import NIL

        memo = cluster.memo_api("solo", "cp")
        found = sum(
            1 for i in range(1, 70) if memo.get_skip(Key(Symbol("k"), (i,))) is not NIL
        )
        assert found == 69
        client.close()
