"""Unit/integration tests for executable pumping (section 4.4)."""

import pytest

from repro.core.keys import Key, Symbol
from repro.errors import RuntimeLaunchError
from repro.runtime.program import ProcessContext, ProgramRegistry
from repro.runtime.pumping import (
    pump_program,
    pump_registry,
    receive_programs,
    source_of,
)

WORKER_SOURCE = '''
def worker(memo, ctx):
    """A pumped worker: squares what it finds in the jar."""
    from repro.core.keys import Key, Symbol

    task = memo.get(Key(Symbol("jar")))
    memo.put(Key(Symbol("out")), task * task, wait=True)
    return "pumped-worker-done"
'''


class TestSourceExtraction:
    def test_plain_function(self):
        def worker(memo, ctx):
            return 1

        src = source_of(worker)
        assert src.startswith("def worker")

    def test_decorators_stripped(self):
        registry = ProgramRegistry()

        @registry.register("w")
        def w(memo, ctx):
            return 2

        src = source_of(w)
        assert src.startswith("def w")
        assert "@registry" not in src

    def test_unextractable_rejected(self):
        fn = eval("lambda memo, ctx: 0")  # noqa: S307 - no source available
        with pytest.raises(RuntimeLaunchError):
            source_of(fn)


class TestPumpReceive:
    def test_source_string_roundtrip(self, two_host_cluster):
        boss_memo = two_host_cluster.memo_api("alpha", "test", "boss")
        pump_program(boss_memo, "worker", WORKER_SOURCE)

        remote_registry = ProgramRegistry()
        remote_memo = two_host_cluster.memo_api("beta", "test", "remote")
        receive_programs(remote_memo, remote_registry, ["worker"])

        worker = remote_registry.lookup("worker")
        # Execute the received program for real.
        exec_memo = two_host_cluster.memo_api("beta", "test", "exec")
        exec_memo.put(Key(Symbol("jar")), 6, wait=True)
        ctx = ProcessContext("test", "1", "worker", "beta")
        assert worker(exec_memo, ctx) == "pumped-worker-done"
        assert exec_memo.get(Key(Symbol("out"))) == 36

    def test_registered_function_roundtrip(self, two_host_cluster):
        registry = ProgramRegistry()

        @registry.register("doubler")
        def doubler(memo, ctx):
            from repro.core.keys import Key, Symbol

            value = memo.get(Key(Symbol("in")))
            return value * 2

        boss_memo = two_host_cluster.memo_api("alpha", "test", "boss")
        pump_registry(boss_memo, registry, ["doubler"])

        remote = ProgramRegistry()
        remote_memo = two_host_cluster.memo_api("beta", "test", "r")
        receive_programs(remote_memo, remote, ["doubler"])
        run_memo = two_host_cluster.memo_api("beta", "test", "run")
        run_memo.put(Key(Symbol("in")), 21, wait=True)
        assert remote.lookup("doubler")(
            run_memo, ProcessContext("test", "1", "doubler", "beta")
        ) == 42

    def test_multiple_hosts_receive_same_program(self, two_host_cluster):
        boss_memo = two_host_cluster.memo_api("alpha", "test", "boss")
        pump_program(boss_memo, "worker", WORKER_SOURCE)
        # get_copy distribution: both hosts can pull it.
        for host in ("alpha", "beta"):
            registry = ProgramRegistry()
            memo = two_host_cluster.memo_api(host, "test", f"rx-{host}")
            receive_programs(memo, registry, ["worker"])
            assert "worker" in registry.names()

    def test_bad_source_rejected(self, two_host_cluster):
        boss_memo = two_host_cluster.memo_api("alpha", "test", "boss")
        pump_program(boss_memo, "broken", "def broken(:\n  pass")
        registry = ProgramRegistry()
        memo = two_host_cluster.memo_api("beta", "test", "rx")
        with pytest.raises(RuntimeLaunchError, match="cross-compile"):
            receive_programs(memo, registry, ["broken"])

    def test_multi_function_source_rejected(self, two_host_cluster):
        boss_memo = two_host_cluster.memo_api("alpha", "test", "boss")
        pump_program(
            boss_memo, "twofns", "def a(m, c):\n  pass\ndef b(m, c):\n  pass\n"
        )
        registry = ProgramRegistry()
        memo = two_host_cluster.memo_api("beta", "test", "rx")
        with pytest.raises(RuntimeLaunchError, match="exactly one"):
            receive_programs(memo, registry, ["twofns"])

    def test_extra_globals_visible(self, two_host_cluster):
        boss_memo = two_host_cluster.memo_api("alpha", "test", "boss")
        pump_program(
            boss_memo, "uses_lib", "def uses_lib(memo, ctx):\n    return LIB_CONSTANT\n"
        )
        registry = ProgramRegistry()
        memo = two_host_cluster.memo_api("beta", "test", "rx")
        receive_programs(
            memo, registry, ["uses_lib"], extra_globals={"LIB_CONSTANT": 7}
        )
        assert registry.lookup("uses_lib")(None, None) == 7
