"""Unit tests for the cluster, registration, and launcher (sections 4.2/4.4)."""

import pytest

from repro import Cluster, ProgramRegistry, run_application, system_default_adf
from repro.adf.model import ADF, FolderDecl, HostDecl, LinkDecl, ProcessDecl
from repro.adf.parser import parse_adf
from repro.core.keys import Key, Symbol
from repro.errors import RuntimeLaunchError
from repro.runtime.launcher import start_processes
from repro.runtime.registration import registration_request_for


class TestCluster:
    def test_context_manager_lifecycle(self):
        adf = system_default_adf(["x"], app="lc")
        with Cluster(adf) as cluster:
            assert cluster.servers["x"].address is not None

    def test_invalid_adf_rejected_at_construction(self):
        adf = ADF(app="bad")  # no hosts
        with pytest.raises(Exception):
            Cluster(adf)

    def test_unknown_transport_rejected(self):
        adf = system_default_adf(["x"], app="t")
        with pytest.raises(RuntimeLaunchError):
            Cluster(adf, transport_kind="carrier-pigeon")

    def test_client_for_unknown_host(self, one_host_cluster):
        with pytest.raises(RuntimeLaunchError):
            one_host_cluster.client_for("ghost")

    def test_register_foreign_hosts_rejected(self, one_host_cluster):
        foreign = system_default_adf(["mars"], app="m")
        with pytest.raises(RuntimeLaunchError, match="no memo server"):
            one_host_cluster.register(foreign)

    def test_registered_apps_tracked(self, one_host_cluster):
        assert "test" in one_host_cluster.registered_apps

    def test_metrics_aggregation(self, two_host_cluster):
        memo = two_host_cluster.memo_api("alpha", "test")
        for i in range(20):
            memo.put(Key(Symbol("k"), (i,)), i, wait=True)
        metrics = two_host_cluster.metrics()
        assert sum(metrics.server_puts.values()) == 20
        assert metrics.broadcasts == 0


class TestRegistrationRequest:
    def test_built_from_adf(self):
        adf = system_default_adf(["a", "b"], app="reg")
        req = registration_request_for(adf)
        assert req.app == "reg"
        assert set(req.host_costs) == {"a", "b"}
        assert len(req.folder_servers) == 2

    def test_validation_runs(self):
        adf = ADF(app="x")
        with pytest.raises(Exception):
            registration_request_for(adf)


class TestRunApplication:
    def boss_worker_adf(self):
        adf = ADF(app="bw")
        adf.hosts = [HostDecl("h1"), HostDecl("h2")]
        adf.folders = [FolderDecl("0", "h1"), FolderDecl("1", "h2")]
        adf.processes = [
            ProcessDecl("0", "boss", "h1"),
            ProcessDecl("1", "worker", "h1"),
            ProcessDecl("2", "worker", "h2"),
        ]
        adf.links = [LinkDecl("h1", "h2")]
        return adf

    def make_registry(self):
        registry = ProgramRegistry()
        jar = Symbol("jar")
        results = Symbol("results")
        stop = Symbol("stop")

        @registry.register("boss")
        def boss(memo, ctx):
            for i in range(10):
                memo.put(Key(jar), i)
            memo.flush()
            total = 0
            for _ in range(10):
                total += memo.get(Key(results))
            # All tasks are processed: release every worker.  (A worker
            # that won no task at all must still be able to terminate.)
            for _ in range(2):
                memo.put(Key(stop), True)
            memo.flush()
            return total

        @registry.register("worker")
        def worker(memo, ctx):
            done = 0
            while True:
                task = memo.get_skip(Key(jar))
                from repro.core.api import NIL

                if task is NIL:
                    if memo.get_skip(Key(stop)) is not NIL:
                        return done
                    import time

                    time.sleep(0.01)
                    continue
                memo.put(Key(results), task * task)
                done += 1

        return registry

    def test_boss_worker_roundtrip(self):
        results = run_application(
            self.boss_worker_adf(), self.make_registry(), timeout=60
        )
        assert results["0"] == sum(i * i for i in range(10))

    def test_context_fields(self):
        adf = system_default_adf(["h"], app="ctx")
        registry = ProgramRegistry()
        seen = {}

        @registry.register("boss")
        def boss(memo, ctx):
            seen["boss"] = (ctx.proc_id, ctx.host, ctx.is_boss, ctx.peers)
            return "ok"

        @registry.register("worker")
        def worker(memo, ctx):
            seen[ctx.proc_id] = ctx.worker_index
            return ctx.params.get("mult", 0) * 2

        results = run_application(adf, registry, params={"mult": 21}, timeout=30)
        assert seen["boss"][0] == "0"
        assert seen["boss"][2] is True
        assert results["1"] == 42

    def test_process_failure_propagates(self):
        adf = system_default_adf(["h"], app="fail")
        registry = ProgramRegistry()

        @registry.register("boss")
        def boss(memo, ctx):
            raise RuntimeError("application bug")

        @registry.register("worker")
        def worker(memo, ctx):
            return None

        with pytest.raises(RuntimeError, match="application bug"):
            run_application(adf, registry, timeout=30)

    def test_missing_program_rejected(self):
        adf = system_default_adf(["h"], app="miss")
        registry = ProgramRegistry()

        @registry.register("boss")
        def boss(memo, ctx):
            return None

        # "worker" missing
        with pytest.raises(RuntimeLaunchError, match="no program"):
            run_application(adf, registry, timeout=30)

    def test_reuse_existing_cluster(self, two_host_cluster):
        adf = ADF(app="test")  # already registered on the fixture cluster
        adf.hosts = [HostDecl("alpha"), HostDecl("beta")]
        adf.folders = [FolderDecl("0", "alpha")]
        adf.processes = [ProcessDecl("0", "boss", "alpha")]
        adf.links = [LinkDecl("alpha", "beta")]
        registry = ProgramRegistry()

        @registry.register("boss")
        def boss(memo, ctx):
            memo.put(Key(Symbol("done")), True, wait=True)
            return memo.get(Key(Symbol("done")))

        results = run_application(adf, registry, cluster=two_host_cluster, timeout=30)
        assert results["0"] is True

    def test_start_processes_returns_handles(self, one_host_cluster):
        adf = ADF(app="test")
        adf.hosts = [HostDecl("solo")]
        adf.folders = [FolderDecl("0", "solo")]
        adf.processes = [ProcessDecl("0", "boss", "solo")]
        registry = ProgramRegistry()

        @registry.register("boss")
        def boss(memo, ctx):
            return 7

        handles = start_processes(one_host_cluster, adf, registry)
        assert len(handles) == 1
        assert handles[0].join(10)
        assert handles[0].result() == 7
        assert not handles[0].failed


class TestProgramRegistry:
    def test_decorator_and_lookup(self):
        registry = ProgramRegistry()

        @registry.register("p")
        def p(memo, ctx):
            return 1

        assert registry.lookup("p") is p
        assert "p" in registry.names()

    def test_conflicting_registration_rejected(self):
        registry = ProgramRegistry()
        registry.register("p", lambda m, c: 1)
        with pytest.raises(RuntimeLaunchError):
            registry.register("p", lambda m, c: 2)


class TestTCPCluster:
    def test_full_roundtrip_over_sockets(self):
        """The same application code over real TCP (portability claim)."""
        adf = system_default_adf(["n1", "n2"], app="tcp")
        with Cluster(adf, transport_kind="tcp") as cluster:
            cluster.register()
            memo_a = cluster.memo_api("n1", "tcp")
            memo_b = cluster.memo_api("n2", "tcp")
            for i in range(10):
                memo_a.put(Key(Symbol("q"), (i,)), {"i": i}, wait=True)
            for i in range(10):
                assert memo_b.get(Key(Symbol("q"), (i,))) == {"i": i}

    def test_latency_rejected_on_tcp(self):
        from repro.sim.netsim import LatencyModel

        adf = system_default_adf(["n1"], app="t")
        with pytest.raises(RuntimeLaunchError):
            Cluster(adf, transport_kind="tcp", latency=LatencyModel(0.001, 0.001))
