"""MemoClient connection hygiene: timeout desync and reconnect-on-failover.

The timeout bug this guards against: a ``TimeoutError`` inside
``request`` used to leave the reply in flight on the socket, so the *next*
request would read the stale reply — every later request/reply pair off by
one.  The client now discards the connection on timeout.
"""

import time

import pytest

from repro import Cluster, system_default_adf
from repro.core.keys import FolderName, Key, Symbol
from repro.network.protocol import GetRequest, PutRequest, StatsRequest
from repro.transferable.wire import encode


@pytest.fixture
def cluster():
    adf = system_default_adf(["solo"], app="rc")
    with Cluster(adf, idle_timeout=0.5) as c:
        c.register()
        yield c


def folder(i=0):
    return FolderName("rc", Key(Symbol("k"), (i,)))


class TestTimeoutDesync:
    def test_timeout_discards_connection_so_no_stale_reply(self, cluster):
        client = cluster.client_for("solo", origin="t")
        # A blocking get on an empty folder cannot answer in time.
        with pytest.raises(TimeoutError):
            client.request(GetRequest(folder(), mode="get"), timeout=0.2)
        # Satisfy the ghost getter so its (stale) reply is actually
        # produced server-side; without the discard it would sit first in
        # the receive queue.
        feeder = cluster.client_for("solo", origin="feeder")
        feeder.request(PutRequest(folder=folder(), payload=encode("x")))
        time.sleep(0.1)

        # The next request must get *its own* reply, not the stale get's.
        reply = client.request(StatsRequest(origin="t"), timeout=5.0)
        assert reply.ok and reply.stats  # a get reply carries no stats
        client.close()
        feeder.close()

    def test_client_usable_for_real_work_after_timeout(self, cluster):
        client = cluster.client_for("solo", origin="t2")
        with pytest.raises(TimeoutError):
            client.request(GetRequest(folder(1), mode="get"), timeout=0.2)
        reply = client.request(
            PutRequest(folder=folder(2), payload=encode("v")), timeout=5.0
        )
        assert reply.ok
        reply = client.request(GetRequest(folder(2), mode="skip"), timeout=5.0)
        assert reply.ok and reply.found
        client.close()


class TestReconnect:
    def test_request_rides_through_server_restart(self):
        adf = system_default_adf(["solo"], app="rc2")
        with Cluster(adf, idle_timeout=0.5) as cluster:
            cluster.register()
            memo = cluster.memo_api("solo", "rc2")
            memo.put(Key(Symbol("a")), 1, wait=True)

            cluster.kill_host("solo")
            cluster.restart_host("solo")

            # The old connection is dead; the client reconnects and the
            # re-registered server serves the request.
            memo.put(Key(Symbol("b")), 2, wait=True)
            assert memo.get(Key(Symbol("b"))) == 2

    def test_reconnect_budget_exhausts_against_a_dead_server(self):
        adf = system_default_adf(["solo"], app="rc3")
        cluster = Cluster(adf).start()
        cluster.register()
        client = cluster.client_for("solo", origin="doomed")
        cluster.stop()
        from repro.errors import CommunicationError

        # TimeoutError is a legitimate outcome too: when stop() closes the
        # listener before the accept loop dequeued this client's connection,
        # no peer ever exists to close the server end, so the request dies
        # by timing out instead of by a connection error.
        with pytest.raises((CommunicationError, ConnectionError, TimeoutError)):
            client.request(StatsRequest(origin="doomed"), timeout=2.0)

    def test_lost_async_acks_surface_as_deferred_error(self):
        adf = system_default_adf(["solo"], app="rc4")
        with Cluster(adf) as cluster:
            cluster.register()
            client = cluster.client_for("solo", origin="p")
            client.post(PutRequest(folder=FolderName("rc4", Key(Symbol("x"))), payload=encode(1)))
            # Simulate the connection dying with the ack un-drained.
            with client._lock:
                client._discard_connection_locked()
            from repro.errors import MemoError

            with pytest.raises(MemoError, match="unacknowledged"):
                client.flush()
            client.close()
