"""Backend selection, validation, and the server_main entrypoint."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.adf.defaults import system_default_adf
from repro.errors import RuntimeLaunchError
from repro.runtime.backends import InProcessBackend, ProcessBackend
from repro.runtime.cluster import Cluster
from repro.servers.hashing import HashWeightPolicy
from repro.servers.memo_server import MEMO_PORT

HOSTS = ["a", "b"]


def adf():
    return system_default_adf(HOSTS, app="sel")


class TestBackendSelection:
    def test_default_is_inprocess_over_memory(self):
        cluster = Cluster(adf())
        assert cluster.backend_kind == "inprocess"
        assert isinstance(cluster.backend, InProcessBackend)
        assert cluster.transport_kind == "memory"
        assert cluster.fabric is not None

    def test_process_backend_defaults_to_tcp(self):
        cluster = Cluster(adf(), backend="process")
        assert cluster.backend_kind == "process"
        assert isinstance(cluster.backend, ProcessBackend)
        assert cluster.transport_kind == "tcp"
        assert cluster.fabric is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(RuntimeLaunchError, match="unknown cluster backend"):
            Cluster(adf(), backend="carrier-pigeon")

    def test_process_backend_rejects_memory_transport(self):
        with pytest.raises(RuntimeLaunchError, match="TCP"):
            Cluster(adf(), backend="process", transport_kind="memory")

    def test_process_backend_rejects_policy_objects(self):
        with pytest.raises(RuntimeLaunchError, match="process boundary"):
            Cluster(adf(), backend="process", policy=HashWeightPolicy())

    def test_process_backend_has_no_server_objects(self):
        cluster = Cluster(adf(), backend="process")
        with pytest.raises(RuntimeLaunchError, match="no in-process server"):
            cluster.servers
        with pytest.raises(RuntimeLaunchError, match="not started"):
            cluster.client_for("a")

    def test_inprocess_keeps_seed_surface(self):
        cluster = Cluster(adf(), transport_kind="tcp")
        assert set(cluster.servers) == set(HOSTS)
        assert set(cluster._transports) == set(HOSTS)
        # TCP listeners bind ephemerally: never the fixed base port.
        for host in HOSTS:
            assert cluster.address_book[host].port != MEMO_PORT
        cluster.stop()


class TestEphemeralPorts:
    def test_parallel_tcp_clusters_never_collide(self, tmp_path):
        """Two clusters (one threaded, one process-per-server) coexist:
        every listener is OS-assigned, nothing derives from MEMO_PORT."""
        with Cluster(adf(), transport_kind="tcp") as first:
            with Cluster(adf(), backend="process") as second:
                ports = [first.address_book[h].port for h in HOSTS]
                ports += [second.address_book[h].port for h in HOSTS]
                assert len(set(ports)) == len(ports)
                assert MEMO_PORT not in ports
                first.register()
                second.register()


class TestServerMain:
    def _env(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        return env

    def test_managed_mode_handshakes_and_dies_on_stdin_eof(self):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.server_main", "--managed"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=self._env(),
        )
        try:
            proc.stdin.write(b'{"host": "solo"}\n')
            proc.stdin.flush()
            handshake = json.loads(proc.stdout.readline())
            assert handshake["host"] == "solo"
            assert handshake["port"] > 0  # ephemeral, OS-assigned
            # Parent death = stdin EOF: the child must exit on its own.
            proc.stdin.close()
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_standalone_mode_defaults_documented_port_and_obeys_sigterm(self):
        # --port 0 keeps the test collision-free; MEMO_PORT stays the
        # documented standalone default in the argparse surface.
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.runtime.server_main",
                "standalone-host",
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            env=self._env(),
        )
        try:
            line = proc.stdout.readline().decode()
            assert "standalone-host" in line and "listening" in line
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_standalone_default_port_is_memo_port(self):
        from repro.runtime import server_main

        parser_default = None
        # The argparse default is the documented MEMO_PORT contract; probe
        # it without binding (7094 may be in use on a shared machine).
        import argparse

        original = argparse.ArgumentParser.parse_args

        def capture(self, argv=None, namespace=None):
            nonlocal parser_default
            for action in self._actions:
                if action.dest == "port":
                    parser_default = action.default
            raise SystemExit(0)

        argparse.ArgumentParser.parse_args = capture
        try:
            with pytest.raises(SystemExit):
                server_main.main(["x"])
        finally:
            argparse.ArgumentParser.parse_args = original
        assert parser_default == MEMO_PORT
